#include "sim/sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/telemetry/profile.h"
#include "common/thread_pool.h"

namespace ht {
namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

// Periodic progress lines on stderr while the cell fan-out runs. One line
// is printed immediately (so a sweep shorter than the period still shows
// a heartbeat), then one per period until stopped. stderr keeps the
// report stream on stdout clean.
class Heartbeat {
 public:
  Heartbeat(const char* label, double period_seconds, uint64_t pending_cells,
            uint64_t cached_cells, const std::atomic<uint64_t>* done)
      : label_(label), period_(period_seconds), pending_(pending_cells),
        cached_(cached_cells), done_(done) {
    if (period_ <= 0) {
      return;
    }
    Print();
    thread_ = std::thread([this] { Loop(); });
  }

  ~Heartbeat() {
    if (!thread_.joinable()) {
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    Print();  // Final line so the last state is always visible.
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::duration<double>(period_), [this] { return stop_; })) {
      lock.unlock();
      Print();
      lock.lock();
    }
  }

  void Print() const {
    const uint64_t done = done_->load(std::memory_order_relaxed);
    const double elapsed = SecondsSince(start_);
    const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
    std::fprintf(stderr,
                 "%s: progress %llu/%llu cells (%llu cached), %.1f cells/s, "
                 "elapsed %.1fs\n",
                 label_, static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(pending_),
                 static_cast<unsigned long long>(cached_), rate, elapsed);
  }

  const char* label_;
  double period_;
  uint64_t pending_;
  uint64_t cached_;
  const std::atomic<uint64_t>* done_;
  SteadyClock::time_point start_ = SteadyClock::now();
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Normalize a canonical spec object's member order so cached and freshly
// computed cells serialize identically no matter how the spec was built.
JsonValue SortedMembers(JsonValue object) {
  std::sort(object.members().begin(), object.members().end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return object;
}

JsonValue MakeReportCell(const std::string& key, JsonValue spec, JsonValue result) {
  JsonValue cell = JsonValue::Object();
  cell.Set("key", JsonValue::Str(key));
  cell.Set("spec", SortedMembers(std::move(spec)));
  cell.Set("result", std::move(result));
  return cell;
}

// The cache cell carries everything the report cell does plus the full
// StatSet snapshot, which downstream analysis can read without ever
// re-running the cell (the report stays lean and stats-free).
JsonValue MakeCacheCell(const JsonValue& report_cell, JsonValue stats) {
  JsonValue cell = JsonValue::Object();
  cell.Set("schema", JsonValue::Str(kSweepCellSchema));
  for (const auto& [name, value] : report_cell.members()) {
    cell.Set(name, value);
  }
  cell.Set("stats", std::move(stats));
  return cell;
}

}  // namespace

std::vector<SweepCellSpec> ExpandGrid(const SweepGrid& grid) {
  std::map<std::string, ScenarioSpec> cells;
  for (const DefenseKind defense : grid.defenses) {
    for (const HwMitigationKind hw : grid.hw) {
      for (const AttackKind attack : grid.attacks) {
        for (const uint64_t threshold : grid.act_thresholds) {
          for (const uint32_t trr : grid.trr_entries) {
            for (const uint32_t blast : grid.blast_radii) {
              for (const int generation : grid.generations) {
                for (const Cycle cycles : grid.cycle_budgets) {
                  for (const uint64_t seed : grid.seeds) {
                    ScenarioSpec spec;
                    if (generation >= 0) {
                      spec.system.dram = DramConfig::DensityGeneration(generation);
                    }
                    if (trr > 0) {
                      spec.system.dram.trr.enabled = true;
                      spec.system.dram.trr.table_entries = trr;
                    }
                    if (blast > 0) {
                      spec.system.dram.disturbance.blast_radius = blast;
                    }
                    spec.defense = defense;
                    spec.hw = hw;
                    spec.attack = attack;
                    spec.act_threshold = threshold;
                    spec.run_cycles = cycles;
                    spec.seed = seed;
                    spec.sides = grid.sides;
                    spec.tenants = grid.tenants;
                    spec.pages_per_tenant = grid.pages_per_tenant;
                    spec.benign_corunner = grid.benign_corunner;
                    cells.emplace(SweepKey(spec), spec);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  std::vector<SweepCellSpec> out;
  out.reserve(cells.size());
  for (auto& [key, spec] : cells) {  // std::map iterates in key order.
    out.push_back(SweepCellSpec{key, spec});
  }
  return out;
}

JsonValue MakeSweepReport(uint64_t grid_cells, std::vector<JsonValue> cells) {
  std::sort(cells.begin(), cells.end(), [](const JsonValue& a, const JsonValue& b) {
    return a.Find("key")->as_string() < b.Find("key")->as_string();
  });
  JsonValue report = JsonValue::Object();
  report.Set("schema", JsonValue::Str(kSweepReportSchema));
  report.Set("grid_cells", JsonValue::Uint(grid_cells));
  JsonValue array = JsonValue::Array();
  for (JsonValue& cell : cells) {
    array.Push(std::move(cell));
  }
  report.Set("cells", std::move(array));
  return report;
}

SweepOutcome RunCells(const std::vector<SweepCellSpec>& all, const SweepOptions& options,
                      ReportBuilder make_report, const char* progress_label) {
  SweepOutcome outcome;
  if (options.shard_count == 0 || options.shard_index == 0 ||
      options.shard_index > options.shard_count) {
    outcome.error = "bad shard: index must be in 1..count";
    return outcome;
  }

  const SteadyClock::time_point sweep_start = SteadyClock::now();
  outcome.total_cells = all.size();

  // This shard's slice of the key-sorted cell list, then split into
  // cache hits and cells that still need simulation.
  ResultCache cache(options.cache_dir, options.binary_cache);
  std::vector<JsonValue> completed;
  std::vector<SweepCellSpec> pending;
  {
    ProfilePhase cache_phase("sweep.cache_load");
    const SteadyClock::time_point cache_start = SteadyClock::now();
    for (size_t i = 0; i < all.size(); ++i) {
      if (i % options.shard_count != options.shard_index - 1) {
        continue;
      }
      ++outcome.shard_cells;
      if (options.resume && cache.enabled()) {
        if (std::optional<JsonValue> hit = cache.Load(all[i].key)) {
          ++outcome.cached_cells;
          completed.push_back(MakeReportCell(all[i].key, std::move(*hit->Find("spec")),
                                             std::move(*hit->Find("result"))));
          continue;
        }
        ++outcome.cache_misses;
      }
      pending.push_back(all[i]);
    }
    outcome.cache_seconds = SecondsSince(cache_start);
  }

  if (options.max_cells > 0 && pending.size() > options.max_cells) {
    outcome.skipped_cells = pending.size() - options.max_cells;
    pending.resize(options.max_cells);
  }

  // Fan the missing cells out over the pool. Each cell is a
  // self-contained System (bit-identical to a serial loop), and a finish
  // hook snapshots the live System's StatSet for the cache cell.
  std::vector<ScenarioResult> results(pending.size());
  std::vector<JsonValue> stats(pending.size());
  std::atomic<uint64_t> cells_done{0};
  {
    ProfilePhase execute_phase("sweep.execute");
    const SteadyClock::time_point execute_start = SteadyClock::now();
    Heartbeat heartbeat(progress_label, options.progress_every, pending.size(),
                        outcome.cached_cells, &cells_done);
    ParallelFor(pending.size(),
                pending.size() <= 1 ? 1u : ResolveThreadCount(options.threads),
                [&](uint64_t i) {
      ScenarioHooks hooks;
      hooks.on_finish = [&stats, i](System& system) {
        stats[i] = StatSetToJson(system.CollectStats());
      };
      results[i] = RunScenario(pending[i].spec, nullptr, &hooks);
      cells_done.fetch_add(1, std::memory_order_relaxed);
    });
    outcome.execute_seconds = SecondsSince(execute_start);
  }

  ProfilePhase report_phase("sweep.report");
  const SteadyClock::time_point report_start = SteadyClock::now();
  for (size_t i = 0; i < pending.size(); ++i) {
    ++outcome.executed_cells;
    JsonValue cell = MakeReportCell(pending[i].key, SpecCanonicalJson(pending[i].spec),
                                    ScenarioResultToJson(results[i]));
    if (cache.enabled()) {
      std::string store_error;
      if (!cache.Store(pending[i].key, MakeCacheCell(cell, std::move(stats[i])), &store_error)) {
        outcome.error = store_error;
        return outcome;
      }
    }
    completed.push_back(std::move(cell));
  }

  outcome.report = make_report(outcome.total_cells, std::move(completed));
  outcome.report_seconds = SecondsSince(report_start);
  outcome.wall_seconds = SecondsSince(sweep_start);
  if (Profiler::Global().enabled()) [[unlikely]] {
    Profiler::Global().AddCounter("sweep.cache_hits", outcome.cached_cells);
    Profiler::Global().AddCounter("sweep.cache_misses", outcome.cache_misses);
    Profiler::Global().AddCounter("sweep.cells_executed", outcome.executed_cells);
  }
  outcome.ok = true;
  return outcome;
}

SweepOutcome RunSweep(const SweepGrid& grid, const SweepOptions& options) {
  return RunCells(ExpandGrid(grid), options, MakeSweepReport, "hammersweep");
}

JsonValue MergeCellReports(const std::vector<JsonValue>& reports,
                           bool (*validate)(const JsonValue&, std::string*),
                           ReportBuilder make_report, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return JsonValue::Null();
  };
  if (reports.empty()) {
    return fail("nothing to merge");
  }
  uint64_t grid_cells = 0;
  std::map<std::string, JsonValue> merged;
  for (size_t i = 0; i < reports.size(); ++i) {
    std::string validate_error;
    if (!validate(reports[i], &validate_error)) {
      return fail("input " + std::to_string(i) + ": " + validate_error);
    }
    const uint64_t this_grid = reports[i].Find("grid_cells")->as_uint();
    if (i == 0) {
      grid_cells = this_grid;
    } else if (this_grid != grid_cells) {
      return fail("input " + std::to_string(i) + ": grid_cells mismatch (" +
                  std::to_string(this_grid) + " vs " + std::to_string(grid_cells) + ")");
    }
    for (const JsonValue& cell : reports[i].Find("cells")->items()) {
      const std::string& key = cell.Find("key")->as_string();
      const auto [it, inserted] = merged.emplace(key, cell);
      if (!inserted && !(it->second == cell)) {
        return fail("conflicting results for cell " + key);
      }
    }
  }
  if (merged.size() > grid_cells) {
    return fail("merged cell count exceeds grid_cells");
  }
  std::vector<JsonValue> cells;
  cells.reserve(merged.size());
  for (auto& [key, cell] : merged) {
    cells.push_back(std::move(cell));
  }
  return make_report(grid_cells, std::move(cells));
}

JsonValue MergeSweepReports(const std::vector<JsonValue>& reports, std::string* error) {
  return MergeCellReports(reports, ValidateSweepReport, MakeSweepReport, error);
}

}  // namespace ht
