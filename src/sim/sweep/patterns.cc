#include "sim/sweep/patterns.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <utility>

#include "attack/pattern.h"

namespace ht {
namespace {

std::vector<TrrVendorConfig> BuildVendorRegistry() {
  return {
      {"none", false, 0, 0, 1.0},
      {"tracker-16", true, 16, 4, 1.0},
      {"tracker-4", true, 4, 2, 1.0},
      {"sampler-4", true, 4, 2, 0.25},
  };
}

uint64_t FieldUint(const JsonValue& object, const char* name) {
  const JsonValue* member = object.Find(name);
  return (member != nullptr && member->is_number()) ? member->as_uint() : 0;
}

double FieldDouble(const JsonValue& object, const char* name, double fallback) {
  const JsonValue* member = object.Find(name);
  return (member != nullptr && member->is_number()) ? member->as_double() : fallback;
}

std::string FieldStr(const JsonValue& object, const char* name) {
  const JsonValue* member = object.Find(name);
  return (member != nullptr && member->type() == JsonValue::Type::kString) ? member->as_string()
                                                                           : std::string();
}

}  // namespace

const std::vector<TrrVendorConfig>& AllTrrVendors() {
  static const std::vector<TrrVendorConfig> vendors = BuildVendorRegistry();
  return vendors;
}

std::optional<TrrVendorConfig> TrrVendorByName(std::string_view name) {
  for (const TrrVendorConfig& vendor : AllTrrVendors()) {
    if (name == vendor.name) {
      return vendor;
    }
  }
  return std::nullopt;
}

std::string KnownTrrVendors() {
  std::string out;
  for (const TrrVendorConfig& vendor : AllTrrVendors()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += vendor.name;
  }
  return out;
}

void ApplyTrrVendor(DramConfig& dram, const TrrVendorConfig& vendor) {
  dram.trr.enabled = vendor.enabled;
  if (vendor.enabled) {
    dram.trr.table_entries = vendor.table_entries;
    dram.trr.refreshes_per_ref = vendor.refreshes_per_ref;
    dram.trr.sample_probability = vendor.sample_probability;
  }
}

std::string TrrVendorNameFor(const JsonValue& canonical_spec) {
  const uint64_t entries = FieldUint(canonical_spec, "trr_entries");
  if (entries == 0) {
    return "none";
  }
  const uint64_t per_ref = FieldUint(canonical_spec, "trr_per_ref");
  const double sample = FieldDouble(canonical_spec, "trr_sample", 1.0);
  for (const TrrVendorConfig& vendor : AllTrrVendors()) {
    if (vendor.enabled && vendor.table_entries == entries &&
        vendor.refreshes_per_ref == per_ref &&
        std::abs(vendor.sample_probability - sample) < 1e-9) {
      return vendor.name;
    }
  }
  // Off-registry TRR shape: a stable synthesized name keeps ranking
  // groups deterministic without forcing every sweep through the presets.
  return "trr" + std::to_string(entries) + "x" + std::to_string(per_ref) + "p" +
         std::to_string(static_cast<uint64_t>(std::lround(sample * 1000.0)));
}

std::vector<SweepCellSpec> ExpandPatternGrid(const PatternCampaignGrid& grid) {
  const std::vector<TrrVendorConfig>& vendors =
      grid.vendors.empty() ? AllTrrVendors() : grid.vendors;
  std::map<std::string, ScenarioSpec> cells;
  for (const TrrVendorConfig& vendor : vendors) {
    for (const uint64_t pattern_seed : grid.pattern_seeds) {
      ScenarioSpec spec;
      spec.attack = AttackKind::kPattern;
      spec.pattern_seed = pattern_seed;
      ApplyTrrVendor(spec.system.dram, vendor);
      spec.run_cycles = grid.run_cycles;
      spec.tenants = grid.tenants;
      spec.pages_per_tenant = grid.pages_per_tenant;
      spec.seed = grid.scenario_seed;
      cells.emplace(SweepKey(spec), spec);
    }
  }
  std::vector<SweepCellSpec> out;
  out.reserve(cells.size());
  for (auto& [key, spec] : cells) {  // std::map iterates in key order.
    out.push_back(SweepCellSpec{key, spec});
  }
  return out;
}

SweepOutcome RunPatternCampaign(const PatternCampaignGrid& grid, const SweepOptions& options) {
  return RunCells(ExpandPatternGrid(grid), options, MakePatternReport, "hammerpattern");
}

JsonValue MakePatternReport(uint64_t grid_cells, std::vector<JsonValue> cells) {
  std::sort(cells.begin(), cells.end(), [](const JsonValue& a, const JsonValue& b) {
    return a.Find("key")->as_string() < b.Find("key")->as_string();
  });

  // Both extra sections are derived from the (key-sorted) cells, so a
  // shard merge rebuilds them byte-identically.
  struct RankEntry {
    uint64_t flips = 0;
    uint64_t pattern_seed = 0;
    std::string key;
    uint64_t cross_domain = 0;
  };
  std::map<std::pair<uint64_t, std::string>, JsonValue> summaries;  // (seed, dram).
  std::map<std::string, std::vector<RankEntry>> vendors;
  for (const JsonValue& cell : cells) {
    const JsonValue* spec = cell.Find("spec");
    const JsonValue* result = cell.Find("result");
    if (spec == nullptr || result == nullptr || FieldStr(*spec, "attack") != "pattern") {
      continue;
    }
    const uint64_t pattern_seed = FieldUint(*spec, "pattern_seed");
    const std::string dram_name = FieldStr(*spec, "dram");
    const auto summary_key = std::make_pair(pattern_seed, dram_name);
    if (summaries.find(summary_key) == summaries.end()) {
      const std::optional<DramConfig> profile = DramProfileByName(dram_name);
      if (profile.has_value()) {
        const HammeringPattern pattern = BuildScenarioPattern(*profile, pattern_seed);
        JsonValue summary = JsonValue::Object();
        summary.Set("pattern_seed", JsonValue::Uint(pattern_seed));
        summary.Set("dram", JsonValue::Str(dram_name));
        summary.Set("frames", JsonValue::Uint(pattern.frames));
        summary.Set("slots_per_frame", JsonValue::Uint(pattern.slots_per_frame));
        summary.Set("num_aggressors", JsonValue::Uint(pattern.num_aggressors));
        summary.Set("num_fillers", JsonValue::Uint(pattern.num_fillers));
        summary.Set("sets", JsonValue::Uint(pattern.sets.size()));
        summaries.emplace(summary_key, std::move(summary));
      }
    }
    RankEntry entry;
    entry.flips = FieldUint(*result, "flip_events");
    entry.pattern_seed = pattern_seed;
    entry.key = cell.Find("key")->as_string();
    entry.cross_domain = FieldUint(*result, "cross_domain_flips");
    vendors[TrrVendorNameFor(*spec)].push_back(entry);
  }

  JsonValue report = JsonValue::Object();
  report.Set("schema", JsonValue::Str(kPatternReportSchema));
  report.Set("grid_cells", JsonValue::Uint(grid_cells));
  JsonValue cell_array = JsonValue::Array();
  for (JsonValue& cell : cells) {
    cell_array.Push(std::move(cell));
  }
  report.Set("cells", std::move(cell_array));

  JsonValue patterns = JsonValue::Array();
  for (auto& [key, summary] : summaries) {  // (seed, dram) ascending.
    patterns.Push(std::move(summary));
  }
  report.Set("patterns", std::move(patterns));

  JsonValue ranking = JsonValue::Array();
  for (auto& [vendor, entries] : vendors) {  // Vendor name ascending.
    std::sort(entries.begin(), entries.end(), [](const RankEntry& a, const RankEntry& b) {
      return std::make_tuple(~a.flips, a.pattern_seed, a.key) <
             std::make_tuple(~b.flips, b.pattern_seed, b.key);
    });
    JsonValue group = JsonValue::Object();
    group.Set("vendor", JsonValue::Str(vendor));
    JsonValue list = JsonValue::Array();
    for (const RankEntry& entry : entries) {
      JsonValue item = JsonValue::Object();
      item.Set("pattern_seed", JsonValue::Uint(entry.pattern_seed));
      item.Set("key", JsonValue::Str(entry.key));
      item.Set("flips", JsonValue::Uint(entry.flips));
      item.Set("cross_domain_flips", JsonValue::Uint(entry.cross_domain));
      list.Push(std::move(item));
    }
    group.Set("entries", std::move(list));
    ranking.Push(std::move(group));
  }
  report.Set("ranking", std::move(ranking));
  return report;
}

JsonValue MergePatternReports(const std::vector<JsonValue>& reports, std::string* error) {
  return MergeCellReports(reports, ValidatePatternReport, MakePatternReport, error);
}

}  // namespace ht
