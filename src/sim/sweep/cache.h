// On-disk result cache for the sweep engine: one JSON document per grid
// cell (`hammertime.sweep_cell.v1`), stored under
// `<dir>/cell_<key>.json` where <key> is the stable hash of the cell's
// canonical spec serialization (see sweep.h). Entries are written
// atomically (tmp file + rename) so a sweep killed mid-store never leaves
// a half-written cell, and every load re-derives the key from the stored
// spec — a corrupt, truncated, or hand-edited entry fails validation and
// is recomputed rather than trusted.
#ifndef HAMMERTIME_SRC_SIM_SWEEP_CACHE_H_
#define HAMMERTIME_SRC_SIM_SWEEP_CACHE_H_

#include <optional>
#include <string>

#include "common/telemetry/json.h"

namespace ht {

inline constexpr const char* kSweepCellSchema = "hammertime.sweep_cell.v1";

// Validates one cached cell document against `key`: schema string, a
// "key" member equal to `key`, a "spec" object whose canonical key
// re-derivation (SweepKeyFromJson) also equals `key`, a "result" object,
// and a "stats" StatSet snapshot. On failure, `error` (if non-null)
// names the first problem.
bool ValidateSweepCell(const JsonValue& doc, const std::string& key, std::string* error = nullptr);

class ResultCache {
 public:
  // An empty `dir` disables the cache (Load always misses, Store is a
  // no-op). The directory is created on first Store. `binary` selects the
  // hammertime.bin.v1 on-disk form (`cell_<key>.htb`) for new entries —
  // Load accepts either format regardless, so a cache written in one mode
  // resumes byte-identically under the other.
  explicit ResultCache(std::string dir, bool binary = false);

  bool enabled() const { return !dir_.empty(); }
  bool binary() const { return binary_; }
  const std::string& dir() const { return dir_; }
  std::string PathFor(const std::string& key) const;

  // Returns the parsed, validated cell document, or nullopt when missing
  // or invalid (invalid entries are treated as cache misses; the caller
  // recomputes and overwrites them). `why` (if non-null) receives the
  // validation error for diagnostics.
  std::optional<JsonValue> Load(const std::string& key, std::string* why = nullptr) const;

  // Atomically persists `cell` (which must already carry schema/key/spec/
  // result). Returns false on I/O failure with a message in `error`.
  bool Store(const std::string& key, const JsonValue& cell, std::string* error = nullptr) const;

 private:
  std::string dir_;
  bool binary_ = false;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_SWEEP_CACHE_H_
