// The cloud-host campaign: benchmarks defense families against
// cross-tenant attacks in a churning multi-tenant population (the
// os/tenant.h cloud mode) on the generic sweep cell executor (RunCells),
// so campaigns inherit sharding, the FNV-keyed result cache, resume, and
// the byte-identical determinism contract, and writes a
// `hammertime.cloud_report.v1` ranking families on blast containment
// (flips escaped per tenant) and tail latency.
//
// The report's `ranking` section is a pure function of the completed
// cells (each cell's canonical spec carries the defense/alloc/scheme
// members a family is recovered from), which is what lets a shard merge
// rebuild the exact unsharded report.
#ifndef HAMMERTIME_SRC_SIM_SWEEP_CLOUD_H_
#define HAMMERTIME_SRC_SIM_SWEEP_CLOUD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sweep/sweep.h"

namespace ht {

// One defense family: a named bundle of the knobs a cloud operator would
// deploy together. The names are canonical — they appear in the report
// ranking and on the hammercloud --families axis.
struct CloudDefenseFamily {
  std::string name;
  DefenseKind defense = DefenseKind::kNone;
  AllocPolicy alloc = AllocPolicy::kLinear;
  InterleaveScheme scheme = InterleaveScheme::kCacheLine;
  bool enforce_domain_groups = false;
};

// Registry, in declaration order: "none" (undefended baseline),
// "isolation" (§4.1: subarray-isolated mapping + subarray-aware
// allocation + enforced domain groups), "frequency" (§4.2 ACT
// wear-leveling into the tenant-aware quarantine pool), and "refresh"
// (§4.3 software victim refresh).
const std::vector<CloudDefenseFamily>& AllCloudDefenseFamilies();
std::optional<CloudDefenseFamily> CloudFamilyByName(std::string_view name);
std::string KnownCloudFamilies();

// Applies the family's knobs to `spec` (defense kind, allocator policy,
// interleave scheme, domain-group enforcement).
void ApplyCloudFamily(ScenarioSpec& spec, const CloudDefenseFamily& family);

// Recovers the family name from a canonical spec's defense / alloc /
// scheme / enforce_domain_groups members; synthesizes
// "<defense>/<alloc>/<scheme>[/dg]" for bundles outside the registry.
// Used to rebuild ranking groups from cells alone.
std::string CloudFamilyNameFor(const JsonValue& canonical_spec);

// The campaign grid: families x attacks x seeds, on one tenant
// population shape. Defaults describe a consolidated host: ~1k tenant
// slots, a heavy-tailed mix, a few percent churn per epoch.
struct CloudCampaignGrid {
  std::vector<CloudDefenseFamily> families;  // Empty = AllCloudDefenseFamilies().
  std::vector<AttackKind> attacks = {AttackKind::kDoubleSided, AttackKind::kPattern};
  std::vector<uint64_t> seeds = {1};  // Scenario seed (and pattern seed for kPattern).
  uint32_t tenants = 1024;
  uint64_t pages_per_tenant = 4;
  double churn_rate = 0.02;
  uint32_t epochs = 8;
  std::string mix = "cloud";
  Cycle run_cycles = 2000000;
};

// Cross product of families x attacks x seeds as runnable cloud cells,
// deduplicated by canonical key and key-sorted (the execution and
// sharding order, exactly like ExpandGrid).
std::vector<SweepCellSpec> ExpandCloudGrid(const CloudCampaignGrid& grid);

// Runs the campaign on the shared cell executor ("hammercloud" heartbeat
// label) and assembles the cloud report.
SweepOutcome RunCloudCampaign(const CloudCampaignGrid& grid, const SweepOptions& options = {});

// Builds a hammertime.cloud_report.v1 from completed cells: the
// key-sorted cell array plus `ranking` (one aggregate per family,
// ordered best-isolating first: flips-escaped-per-tenant asc, then p99
// read latency asc, then family name).
JsonValue MakeCloudReport(uint64_t grid_cells, std::vector<JsonValue> cells);

// Shard-merge for cloud reports; byte-identical to the unsharded report
// over the same cells (the ranking is rebuilt from the cell union).
JsonValue MergeCloudReports(const std::vector<JsonValue>& reports, std::string* error = nullptr);

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_SWEEP_CLOUD_H_
