#include "sim/sweep/cloud.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace ht {
namespace {

std::vector<CloudDefenseFamily> BuildFamilyRegistry() {
  return {
      {"none", DefenseKind::kNone, AllocPolicy::kLinear, InterleaveScheme::kCacheLine, false},
      {"isolation", DefenseKind::kNone, AllocPolicy::kSubarrayAware,
       InterleaveScheme::kSubarrayIsolated, true},
      {"frequency", DefenseKind::kActRemap, AllocPolicy::kLinear, InterleaveScheme::kCacheLine,
       false},
      {"refresh", DefenseKind::kSwRefresh, AllocPolicy::kLinear, InterleaveScheme::kCacheLine,
       false},
  };
}

uint64_t FieldUint(const JsonValue& object, const char* name) {
  const JsonValue* member = object.Find(name);
  return (member != nullptr && member->is_number()) ? member->as_uint() : 0;
}

double FieldDouble(const JsonValue& object, const char* name) {
  const JsonValue* member = object.Find(name);
  return (member != nullptr && member->is_number()) ? member->as_double() : 0.0;
}

std::string FieldStr(const JsonValue& object, const char* name) {
  const JsonValue* member = object.Find(name);
  return (member != nullptr && member->type() == JsonValue::Type::kString) ? member->as_string()
                                                                           : std::string();
}

bool FieldBool(const JsonValue& object, const char* name) {
  const JsonValue* member = object.Find(name);
  return member != nullptr && member->type() == JsonValue::Type::kBool && member->as_bool();
}

}  // namespace

const std::vector<CloudDefenseFamily>& AllCloudDefenseFamilies() {
  static const std::vector<CloudDefenseFamily> families = BuildFamilyRegistry();
  return families;
}

std::optional<CloudDefenseFamily> CloudFamilyByName(std::string_view name) {
  for (const CloudDefenseFamily& family : AllCloudDefenseFamilies()) {
    if (name == family.name) {
      return family;
    }
  }
  return std::nullopt;
}

std::string KnownCloudFamilies() {
  std::string out;
  for (const CloudDefenseFamily& family : AllCloudDefenseFamilies()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += family.name;
  }
  return out;
}

void ApplyCloudFamily(ScenarioSpec& spec, const CloudDefenseFamily& family) {
  spec.defense = family.defense;
  spec.system.alloc = family.alloc;
  spec.system.mc.scheme = family.scheme;
  spec.system.mc.enforce_domain_groups = family.enforce_domain_groups;
}

std::string CloudFamilyNameFor(const JsonValue& canonical_spec) {
  const std::string defense = FieldStr(canonical_spec, "defense");
  const std::string alloc = FieldStr(canonical_spec, "alloc");
  const std::string scheme = FieldStr(canonical_spec, "scheme");
  const bool enforce = FieldBool(canonical_spec, "enforce_domain_groups");
  for (const CloudDefenseFamily& family : AllCloudDefenseFamilies()) {
    if (defense == ToString(family.defense) && alloc == ToString(family.alloc) &&
        scheme == ToString(family.scheme) && enforce == family.enforce_domain_groups) {
      return family.name;
    }
  }
  // Off-registry bundle: a stable synthesized name keeps ranking groups
  // deterministic without forcing every campaign through the presets.
  std::string name = defense + "/" + alloc + "/" + scheme;
  if (enforce) {
    name += "/dg";
  }
  return name;
}

std::vector<SweepCellSpec> ExpandCloudGrid(const CloudCampaignGrid& grid) {
  const std::vector<CloudDefenseFamily>& families =
      grid.families.empty() ? AllCloudDefenseFamilies() : grid.families;
  std::map<std::string, ScenarioSpec> cells;
  for (const CloudDefenseFamily& family : families) {
    for (const AttackKind attack : grid.attacks) {
      for (const uint64_t seed : grid.seeds) {
        ScenarioSpec spec;
        ApplyCloudFamily(spec, family);
        spec.attack = attack;
        spec.pattern_seed = attack == AttackKind::kPattern ? seed : 0;
        spec.run_cycles = grid.run_cycles;
        spec.tenants = grid.tenants;
        spec.pages_per_tenant = grid.pages_per_tenant;
        spec.traffic_mix = grid.mix;
        spec.churn_rate = grid.churn_rate;
        spec.epochs = grid.epochs;
        spec.seed = seed;
        cells.emplace(SweepKey(spec), spec);
      }
    }
  }
  std::vector<SweepCellSpec> out;
  out.reserve(cells.size());
  for (auto& [key, spec] : cells) {  // std::map iterates in key order.
    out.push_back(SweepCellSpec{key, spec});
  }
  return out;
}

SweepOutcome RunCloudCampaign(const CloudCampaignGrid& grid, const SweepOptions& options) {
  return RunCells(ExpandCloudGrid(grid), options, MakeCloudReport, "hammercloud");
}

JsonValue MakeCloudReport(uint64_t grid_cells, std::vector<JsonValue> cells) {
  std::sort(cells.begin(), cells.end(), [](const JsonValue& a, const JsonValue& b) {
    return a.Find("key")->as_string() < b.Find("key")->as_string();
  });

  // The ranking is derived from the (key-sorted) cells, so a shard merge
  // rebuilds it byte-identically: accumulation happens in key order.
  struct FamilyAggregate {
    uint64_t cells = 0;
    uint64_t escaped_flips = 0;
    uint64_t tenants_hit = 0;
    uint64_t tenant_slots = 0;
    double p99_sum = 0.0;
    double avg_latency_sum = 0.0;
    double ops_per_kcycle_sum = 0.0;
  };
  std::map<std::string, FamilyAggregate> families;
  for (const JsonValue& cell : cells) {
    const JsonValue* spec = cell.Find("spec");
    const JsonValue* result = cell.Find("result");
    if (spec == nullptr || result == nullptr || FieldStr(*spec, "mix").empty()) {
      continue;  // Ranking covers cloud cells only.
    }
    FamilyAggregate& aggregate = families[CloudFamilyNameFor(*spec)];
    aggregate.cells += 1;
    aggregate.escaped_flips += FieldUint(*result, "escaped_flips");
    aggregate.tenants_hit += FieldUint(*result, "tenants_hit");
    aggregate.tenant_slots += FieldUint(*spec, "tenants");
    aggregate.p99_sum += FieldDouble(*result, "p99_read_latency");
    aggregate.avg_latency_sum += FieldDouble(*result, "avg_read_latency");
    aggregate.ops_per_kcycle_sum += FieldDouble(*result, "ops_per_kcycle");
  }

  struct RankEntry {
    std::string family;
    FamilyAggregate aggregate;
    double escapes_per_tenant = 0.0;
    double p99 = 0.0;
  };
  std::vector<RankEntry> ranking_entries;
  ranking_entries.reserve(families.size());
  for (auto& [family, aggregate] : families) {
    RankEntry entry;
    entry.family = family;
    entry.aggregate = aggregate;
    entry.escapes_per_tenant =
        aggregate.tenant_slots == 0
            ? 0.0
            : static_cast<double>(aggregate.escaped_flips) /
                  static_cast<double>(aggregate.tenant_slots);
    entry.p99 = aggregate.cells == 0 ? 0.0 : aggregate.p99_sum / aggregate.cells;
    ranking_entries.push_back(std::move(entry));
  }
  std::sort(ranking_entries.begin(), ranking_entries.end(),
            [](const RankEntry& a, const RankEntry& b) {
              return std::make_tuple(a.escapes_per_tenant, a.p99, a.family) <
                     std::make_tuple(b.escapes_per_tenant, b.p99, b.family);
            });

  JsonValue report = JsonValue::Object();
  report.Set("schema", JsonValue::Str(kCloudReportSchema));
  report.Set("grid_cells", JsonValue::Uint(grid_cells));
  JsonValue cell_array = JsonValue::Array();
  for (JsonValue& cell : cells) {
    cell_array.Push(std::move(cell));
  }
  report.Set("cells", std::move(cell_array));

  JsonValue ranking = JsonValue::Array();
  for (const RankEntry& entry : ranking_entries) {
    const FamilyAggregate& aggregate = entry.aggregate;
    JsonValue item = JsonValue::Object();
    item.Set("family", JsonValue::Str(entry.family));
    item.Set("cells", JsonValue::Uint(aggregate.cells));
    item.Set("flips_escaped_per_tenant", JsonValue::Double(entry.escapes_per_tenant));
    item.Set("escaped_flips", JsonValue::Uint(aggregate.escaped_flips));
    item.Set("tenants_hit", JsonValue::Uint(aggregate.tenants_hit));
    item.Set("p99_read_latency", JsonValue::Double(entry.p99));
    item.Set("avg_read_latency",
             JsonValue::Double(aggregate.cells == 0
                                   ? 0.0
                                   : aggregate.avg_latency_sum / aggregate.cells));
    item.Set("ops_per_kcycle",
             JsonValue::Double(aggregate.cells == 0
                                   ? 0.0
                                   : aggregate.ops_per_kcycle_sum / aggregate.cells));
    ranking.Push(std::move(item));
  }
  report.Set("ranking", std::move(ranking));
  return report;
}

JsonValue MergeCloudReports(const std::vector<JsonValue>& reports, std::string* error) {
  return MergeCellReports(reports, ValidateCloudReport, MakeCloudReport, error);
}

}  // namespace ht
