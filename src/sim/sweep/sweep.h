// The sweep engine: expands a declarative parameter grid into a
// deduplicated, key-sorted list of scenario cells, executes them on the
// shared worker pool, and assembles a deterministic
// `hammertime.sweep_report.v1` document.
//
// Determinism contract: the report contains no wall-clock or host state,
// cells are ordered by their stable keys, and each cell's result is the
// bit-identical RunScenario outcome — so a resumed sweep, a re-run sweep,
// and the merge of any shard partition all serialize to the same bytes
// as one uninterrupted run.
#ifndef HAMMERTIME_SRC_SIM_SWEEP_SWEEP_H_
#define HAMMERTIME_SRC_SIM_SWEEP_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/telemetry/json.h"
#include "common/telemetry/report.h"  // kSweepReportSchema, ValidateSweepReport.
#include "sim/runner/runner.h"
#include "sim/sweep/cache.h"
#include "sim/sweep/speckey.h"

namespace ht {

// One axis per sweep-controllable knob; the grid is the cross product.
// Sentinels keep the axes composable with profile defaults: trr_entries 0
// = TRR off, blast_radii 0 = the profile's own radius, generations -1 =
// the scaled simulation default profile.
struct SweepGrid {
  std::vector<DefenseKind> defenses = {DefenseKind::kNone};
  std::vector<HwMitigationKind> hw = {HwMitigationKind::kNone};
  std::vector<AttackKind> attacks = {AttackKind::kDoubleSided};
  std::vector<uint64_t> act_thresholds = {256};
  std::vector<uint32_t> trr_entries = {0};
  std::vector<uint32_t> blast_radii = {0};
  std::vector<int> generations = {-1};
  std::vector<Cycle> cycle_budgets = {800000};
  std::vector<uint64_t> seeds = {0};
  // Scalar shape knobs applied to every cell.
  uint32_t sides = 16;
  uint32_t tenants = 2;
  uint64_t pages_per_tenant = 512;
  bool benign_corunner = false;
};

// A grid point ready to run: the canonical key and the runnable spec.
struct SweepCellSpec {
  std::string key;
  ScenarioSpec spec;
};

// Cross product of the grid axes, deduplicated by canonical key (two
// points that canonicalize identically — e.g. act-threshold variations
// under a defense that ignores them do NOT collapse, but genuinely
// identical specs do) and sorted by key. The order is the execution and
// sharding order.
std::vector<SweepCellSpec> ExpandGrid(const SweepGrid& grid);

struct SweepOptions {
  unsigned threads = 0;       // 0 = HT_THREADS / hardware concurrency.
  std::string cache_dir;      // Empty = no result cache.
  bool resume = false;        // Reuse valid cached cells instead of re-running.
  bool binary_cache = false;  // Store cache cells as hammertime.bin.v1 (.htb).
  uint32_t shard_index = 1;   // 1-based: cell i runs iff i % count == index-1.
  uint32_t shard_count = 1;
  uint64_t max_cells = 0;     // Stop after this many executed cells (0 = all);
                              // the remainder is left for a resumed run.
  double progress_every = 0;  // > 0: heartbeat lines on stderr every N
                              // seconds while cells execute (one line is
                              // printed immediately so even short sweeps
                              // are observable).
};

struct SweepOutcome {
  bool ok = false;            // False on cache I/O failure or bad options.
  std::string error;
  uint64_t total_cells = 0;    // Grid size after dedup.
  uint64_t shard_cells = 0;    // Cells belonging to this shard.
  uint64_t cached_cells = 0;   // Satisfied from the result cache.
  uint64_t cache_misses = 0;   // Resume lookups that found no usable entry.
  uint64_t executed_cells = 0; // Actually simulated this run.
  uint64_t skipped_cells = 0;  // Deferred by max_cells.
  // Wall-clock breakdown of this shard's run (not part of the report,
  // which stays host-state-free): total, cache probe/load phase,
  // simulation fan-out, and report assembly + cell stores.
  double wall_seconds = 0.0;
  double cache_seconds = 0.0;
  double execute_seconds = 0.0;
  double report_seconds = 0.0;
  JsonValue report;            // hammertime.sweep_report.v1 (completed cells only).
};

// Assembles a campaign report from completed cells; total grid size
// first, the completed (key/spec/result) cell objects second. The sweep
// uses MakeSweepReport; the pattern campaign derives its extra sections
// (pattern summaries, per-vendor ranking) from the cells themselves, so
// the same builder serves fresh runs and shard merges.
using ReportBuilder = JsonValue (*)(uint64_t grid_cells, std::vector<JsonValue> cells);

// The generic cell executor under RunSweep and RunPatternCampaign: takes
// an already-expanded key-sorted cell list, runs this shard's missing
// cells (deterministic spec order on the worker pool, resumable via the
// cell cache), persists each completed cell, and assembles the report
// with `make_report`. `progress_label` prefixes heartbeat lines.
SweepOutcome RunCells(const std::vector<SweepCellSpec>& cells, const SweepOptions& options,
                      ReportBuilder make_report, const char* progress_label = "hammersweep");

// Expands `grid`, executes this shard's missing cells (deterministic spec
// order on the worker pool), persists each completed cell to the cache,
// and builds the report from every completed cell.
SweepOutcome RunSweep(const SweepGrid& grid, const SweepOptions& options = {});

// Builds a sweep report document from completed cells (sorted by key).
JsonValue MakeSweepReport(uint64_t grid_cells, std::vector<JsonValue> cells);

// Generic shard-report union by cell key: all inputs must pass
// `validate`, agree on grid_cells, and agree on any key they share; the
// merged report is rebuilt with `make_report`, so it is byte-identical to
// the unsharded report over the same cells. Returns a null JsonValue with
// `error` set on any mismatch.
JsonValue MergeCellReports(const std::vector<JsonValue>& reports,
                           bool (*validate)(const JsonValue&, std::string*),
                           ReportBuilder make_report, std::string* error = nullptr);

// Unions shard reports by cell key. All inputs must validate, agree on
// grid_cells, and agree on any key they share; the merged report is
// byte-identical to the unsharded report over the same cells. Returns a
// null JsonValue with `error` set on any mismatch.
JsonValue MergeSweepReports(const std::vector<JsonValue>& reports, std::string* error = nullptr);

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_SWEEP_SWEEP_H_
