// Canonical ScenarioSpec serialization and stable cache-key derivation
// for the sweep engine.
//
// The canonical form is a flat JSON object covering exactly the knobs the
// sweep grid can vary (defense, hw mitigation, attack, thresholds, TRR
// entries, blast radius, DRAM profile, cycle budget, seed, tenant
// shape...). The cache key is the FNV-1a 64 hash of the compact dump of
// that object with its members sorted by name — so field order never
// matters, two grid points that canonicalize identically share one cell,
// and any change to a covered knob (or to a canonical enum name) changes
// the key. Knobs outside this projection (hand-edited SystemConfig
// fields) are NOT part of the key; sweeps that vary them must use
// separate cache directories (DESIGN.md §11 documents the rule).
#ifndef HAMMERTIME_SRC_SIM_SWEEP_SPECKEY_H_
#define HAMMERTIME_SRC_SIM_SWEEP_SPECKEY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/telemetry/json.h"
#include "sim/runner/runner.h"

namespace ht {

// FNV-1a 64-bit over `text` (the key hash primitive; exposed for tests).
uint64_t Fnv1a64(std::string_view text);

// Flattens the sweep-controllable projection of `spec` into a flat JSON
// object (scalar members only, insertion order = canonical order).
JsonValue SpecCanonicalJson(const ScenarioSpec& spec);

// Rebuilds a runnable ScenarioSpec from a canonical object: the DRAM
// profile is resolved by name (SimDefault / DensityGeneration / Tiny) and
// the serialized overrides (mac, blast radius, TRR, ...) are re-applied.
// Returns nullopt when a member is missing, mistyped, or names an unknown
// profile/kind.
std::optional<ScenarioSpec> SpecFromCanonicalJson(const JsonValue& json,
                                                  std::string* error = nullptr);

// Resolves a DRAM profile by its config name ("ddr4-2400-sim",
// "gen0-ddr3".."gen4-projected", "tiny-test").
std::optional<DramConfig> DramProfileByName(std::string_view name);

// 16-hex-digit stable key of a canonical spec object. Members are sorted
// by name before hashing, so any insertion order yields the same key.
std::string SweepKeyFromJson(const JsonValue& canonical_spec);

// Convenience: SweepKeyFromJson(SpecCanonicalJson(spec)).
std::string SweepKey(const ScenarioSpec& spec);

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_SWEEP_SPECKEY_H_
