// The pattern-fuzzing campaign: drives PatternBuilder seeds across TRR
// vendor configurations on the generic sweep cell executor (RunCells), so
// campaigns inherit sharding, the FNV-keyed result cache, resume, and the
// byte-identical determinism contract, and writes a
// `hammertime.pattern_report.v1` ranking flips-per-pattern per vendor.
//
// The report's `patterns` and `ranking` sections are pure functions of
// the completed cells (each cell's canonical spec carries its
// pattern_seed, DRAM profile, and TRR shape), which is what lets a shard
// merge rebuild the exact unsharded report.
#ifndef HAMMERTIME_SRC_SIM_SWEEP_PATTERNS_H_
#define HAMMERTIME_SRC_SIM_SWEEP_PATTERNS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sweep/sweep.h"

namespace ht {

// One TRR vendor preset: a named (table entries, refreshes-per-REF,
// sample probability) triple. The names are canonical — they appear in
// report ranking groups and on the hammerpattern --trr axis.
struct TrrVendorConfig {
  std::string name;
  bool enabled = false;
  uint32_t table_entries = 0;
  uint32_t refreshes_per_ref = 0;
  double sample_probability = 1.0;
};

// Registry, in declaration order: "none" (TRR off), "tracker-16" (a deep
// deterministic Misra-Gries tracker), "tracker-4" (a shallow one, the E3
// default shape), and "sampler-4" (shallow + probabilistic sampling — the
// config non-uniform patterns are expected to beat).
const std::vector<TrrVendorConfig>& AllTrrVendors();
std::optional<TrrVendorConfig> TrrVendorByName(std::string_view name);
std::string KnownTrrVendors();

// Applies the preset to `dram.trr` (disables TRR for "none").
void ApplyTrrVendor(DramConfig& dram, const TrrVendorConfig& vendor);

// Recovers the vendor name from a canonical spec's trr_entries /
// trr_per_ref / trr_sample members; synthesizes "trr<e>x<r>p<permille>"
// for shapes outside the registry. Used to rebuild ranking groups from
// cells alone.
std::string TrrVendorNameFor(const JsonValue& canonical_spec);

// The campaign grid: pattern seeds x vendor configs, on one scenario
// shape. Defaults mirror ScenarioSpec's.
struct PatternCampaignGrid {
  std::vector<uint64_t> pattern_seeds = {1};
  std::vector<TrrVendorConfig> vendors;  // Empty = AllTrrVendors().
  Cycle run_cycles = 800000;
  uint32_t tenants = 2;
  uint64_t pages_per_tenant = 512;
  uint64_t scenario_seed = 0;  // ScenarioSpec::seed for every cell.
};

// Cross product of seeds x vendors as runnable kPattern cells,
// deduplicated by canonical key and key-sorted (the execution and
// sharding order, exactly like ExpandGrid).
std::vector<SweepCellSpec> ExpandPatternGrid(const PatternCampaignGrid& grid);

// Runs the campaign on the shared cell executor ("hammerpattern"
// heartbeat label) and assembles the pattern report.
SweepOutcome RunPatternCampaign(const PatternCampaignGrid& grid,
                                const SweepOptions& options = {});

// Builds a hammertime.pattern_report.v1 from completed cells: the
// key-sorted cell array plus `patterns` (one summary per distinct
// pattern_seed, rebuilt via BuildScenarioPattern from the cell's DRAM
// profile) and `ranking` (per-vendor groups sorted by name; entries by
// flips desc, then pattern_seed asc).
JsonValue MakePatternReport(uint64_t grid_cells, std::vector<JsonValue> cells);

// Shard-merge for pattern reports; byte-identical to the unsharded
// report over the same cells (sections are rebuilt from the cell union).
JsonValue MergePatternReports(const std::vector<JsonValue>& reports,
                              std::string* error = nullptr);

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_SWEEP_PATTERNS_H_
