#include "sim/sweep/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "sim/sweep/speckey.h"

namespace ht {

bool ValidateSweepCell(const JsonValue& doc, const std::string& key, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  if (doc.type() != JsonValue::Type::kObject) {
    return fail("cell document is not an object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->type() != JsonValue::Type::kString ||
      schema->as_string() != kSweepCellSchema) {
    return fail(std::string("schema is not ") + kSweepCellSchema);
  }
  const JsonValue* stored_key = doc.Find("key");
  if (stored_key == nullptr || stored_key->type() != JsonValue::Type::kString ||
      stored_key->as_string() != key) {
    return fail("stored key does not match " + key);
  }
  const JsonValue* spec = doc.Find("spec");
  if (spec == nullptr || spec->type() != JsonValue::Type::kObject) {
    return fail("missing spec object");
  }
  // The load-bearing integrity check: re-derive the key from the stored
  // spec. A truncated or hand-edited spec cannot keep hashing to the file
  // it sits in.
  if (SweepKeyFromJson(*spec) != key) {
    return fail("spec does not hash to key " + key);
  }
  std::string spec_error;
  if (!SpecFromCanonicalJson(*spec, &spec_error).has_value()) {
    return fail("stored spec is not runnable: " + spec_error);
  }
  const JsonValue* result = doc.Find("result");
  if (result == nullptr || result->type() != JsonValue::Type::kObject) {
    return fail("missing result object");
  }
  const JsonValue* stats = doc.Find("stats");
  if (stats == nullptr || stats->type() != JsonValue::Type::kObject) {
    return fail("missing stats object");
  }
  return true;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::PathFor(const std::string& key) const {
  return dir_ + "/cell_" + key + ".json";
}

std::optional<JsonValue> ResultCache::Load(const std::string& key, std::string* why) const {
  if (!enabled()) {
    if (why != nullptr) {
      *why = "cache disabled";
    }
    return std::nullopt;
  }
  std::ifstream in(PathFor(key));
  if (!in) {
    if (why != nullptr) {
      *why = "no cache entry";
    }
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  std::optional<JsonValue> doc = JsonValue::Parse(text.str(), &parse_error);
  if (!doc.has_value()) {
    if (why != nullptr) {
      *why = "unparsable cache entry: " + parse_error;
    }
    return std::nullopt;
  }
  if (!ValidateSweepCell(*doc, key, why)) {
    return std::nullopt;
  }
  return doc;
}

bool ResultCache::Store(const std::string& key, const JsonValue& cell, std::string* error) const {
  if (!enabled()) {
    return true;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + dir_ + ": " + ec.message();
    }
    return false;
  }
  const std::string final_path = PathFor(key);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot open " + tmp_path;
      }
      return false;
    }
    cell.Dump(out);
    out << "\n";
    if (!out) {
      if (error != nullptr) {
        *error = "write failed for " + tmp_path;
      }
      return false;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp_path + ": " + ec.message();
    }
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace ht
