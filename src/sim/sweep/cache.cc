#include "sim/sweep/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/telemetry/binary.h"
#include "sim/sweep/speckey.h"

namespace ht {

bool ValidateSweepCell(const JsonValue& doc, const std::string& key, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  if (doc.type() != JsonValue::Type::kObject) {
    return fail("cell document is not an object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->type() != JsonValue::Type::kString ||
      schema->as_string() != kSweepCellSchema) {
    return fail(std::string("schema is not ") + kSweepCellSchema);
  }
  const JsonValue* stored_key = doc.Find("key");
  if (stored_key == nullptr || stored_key->type() != JsonValue::Type::kString ||
      stored_key->as_string() != key) {
    return fail("stored key does not match " + key);
  }
  const JsonValue* spec = doc.Find("spec");
  if (spec == nullptr || spec->type() != JsonValue::Type::kObject) {
    return fail("missing spec object");
  }
  // The load-bearing integrity check: re-derive the key from the stored
  // spec. A truncated or hand-edited spec cannot keep hashing to the file
  // it sits in.
  if (SweepKeyFromJson(*spec) != key) {
    return fail("spec does not hash to key " + key);
  }
  std::string spec_error;
  if (!SpecFromCanonicalJson(*spec, &spec_error).has_value()) {
    return fail("stored spec is not runnable: " + spec_error);
  }
  const JsonValue* result = doc.Find("result");
  if (result == nullptr || result->type() != JsonValue::Type::kObject) {
    return fail("missing result object");
  }
  const JsonValue* stats = doc.Find("stats");
  if (stats == nullptr || stats->type() != JsonValue::Type::kObject) {
    return fail("missing stats object");
  }
  return true;
}

ResultCache::ResultCache(std::string dir, bool binary) : dir_(std::move(dir)), binary_(binary) {}

std::string ResultCache::PathFor(const std::string& key) const {
  return dir_ + "/cell_" + key + (binary_ ? kHtbExtension : ".json");
}

std::optional<JsonValue> ResultCache::Load(const std::string& key, std::string* why) const {
  if (!enabled()) {
    if (why != nullptr) {
      *why = "cache disabled";
    }
    return std::nullopt;
  }
  // Try the configured format first, then the other one: mixed-mode
  // caches (a JSON sweep resumed with --binary-cache, or vice versa)
  // stay fully resumable. ReadTelemetryDocument sniffs content, so even
  // a mislabeled entry decodes.
  const std::string base = dir_ + "/cell_" + key;
  const char* extensions[2] = {binary_ ? kHtbExtension : ".json",
                               binary_ ? ".json" : kHtbExtension};
  std::string read_error;
  std::optional<JsonValue> doc;
  for (const char* extension : extensions) {
    doc = ReadTelemetryDocument(base + extension, &read_error);
    if (doc.has_value()) {
      break;
    }
  }
  if (!doc.has_value()) {
    if (why != nullptr) {
      *why = "no usable cache entry: " + read_error;
    }
    return std::nullopt;
  }
  if (!ValidateSweepCell(*doc, key, why)) {
    return std::nullopt;
  }
  return doc;
}

bool ResultCache::Store(const std::string& key, const JsonValue& cell, std::string* error) const {
  if (!enabled()) {
    return true;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + dir_ + ": " + ec.message();
    }
    return false;
  }
  const std::string final_path = PathFor(key);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot open " + tmp_path;
      }
      return false;
    }
    // Format follows the cache mode, not the tmp suffix.
    if (binary_) {
      const std::string encoded = EncodeJsonBinary(cell);
      out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    } else {
      cell.Dump(out);
      out << "\n";
    }
    if (!out) {
      if (error != nullptr) {
        *error = "write failed for " + tmp_path;
      }
      return false;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp_path + ": " + ec.message();
    }
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace ht
