// Trace-driven workloads: replay a recorded memory-operation trace as an
// InstructionStream, and record a stream back out. The format is one
// operation per line:
//
//   R <hex-va>            load
//   W <hex-va> <hex-val>  store
//   F <hex-va>            clflush
//   N                     fence
//   I <cycles>            idle
//   # ...                 comment
//
// Lets users feed captured application traces (e.g. from a Pin/DynamoRIO
// tool) through the simulator without writing C++.
#ifndef HAMMERTIME_SRC_SIM_TRACE_H_
#define HAMMERTIME_SRC_SIM_TRACE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "cpu/core_ops.h"

namespace ht {

// Parses a trace; malformed lines are skipped and counted.
struct ParsedTrace {
  std::vector<CoreOp> ops;
  uint64_t skipped_lines = 0;
};

ParsedTrace ParseTrace(std::istream& in);

// Serializes ops in the trace format (inverse of ParseTrace for the
// supported op kinds; Halt is omitted, unsupported kinds are skipped).
void WriteTrace(const std::vector<CoreOp>& ops, std::ostream& out);

// Replays a parsed trace, optionally looping it `repeats` times
// (0 = forever).
class TraceWorkload : public InstructionStream {
 public:
  TraceWorkload(std::vector<CoreOp> ops, uint64_t repeats = 1, uint32_t ilp = 8)
      : ops_(std::move(ops)), repeats_(repeats), ilp_(ilp) {}

  CoreOp Next() override;
  uint32_t IlpHint() const override { return ilp_; }

 private:
  std::vector<CoreOp> ops_;
  uint64_t repeats_;
  uint32_t ilp_;
  size_t cursor_ = 0;
  uint64_t completed_passes_ = 0;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_TRACE_H_
