// Benign workload generators (instruction streams) used by the
// performance experiments: sequential streaming, uniform random access,
// zipf-like hotspot access, and dependent pointer chasing.
#ifndef HAMMERTIME_SRC_SIM_WORKLOADS_H_
#define HAMMERTIME_SRC_SIM_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "cpu/core_ops.h"

namespace ht {

// Sequential read/write sweep over a VA region (STREAM-like). Stores
// write the domain's golden pattern value, so benign writes never read
// as corruption during verification.
class StreamWorkload : public InstructionStream {
 public:
  StreamWorkload(DomainId domain, VirtAddr base, uint64_t bytes, uint64_t total_ops,
                 double write_fraction = 0.0, uint64_t seed = 1);

  CoreOp Next() override;
  uint32_t IlpHint() const override { return 16; }

 private:
  DomainId domain_;
  VirtAddr base_;
  uint64_t lines_;
  uint64_t total_ops_;
  double write_fraction_;
  Rng rng_;
  uint64_t issued_ = 0;
  uint64_t cursor_ = 0;
};

// Uniform random line accesses over a VA region.
class RandomWorkload : public InstructionStream {
 public:
  RandomWorkload(DomainId domain, VirtAddr base, uint64_t bytes, uint64_t total_ops,
                 double write_fraction, uint64_t seed);

  CoreOp Next() override;
  uint32_t IlpHint() const override { return 16; }

 private:
  DomainId domain_;
  VirtAddr base_;
  uint64_t lines_;
  uint64_t total_ops_;
  double write_fraction_;
  Rng rng_;
  uint64_t issued_ = 0;
};

// Skewed access: `hot_fraction` of accesses go to a small hot set.
class HotspotWorkload : public InstructionStream {
 public:
  HotspotWorkload(VirtAddr base, uint64_t bytes, uint64_t total_ops, double hot_fraction,
                  uint64_t hot_lines, uint64_t seed);

  CoreOp Next() override;
  uint32_t IlpHint() const override { return 16; }

 private:
  VirtAddr base_;
  uint64_t lines_;
  uint64_t total_ops_;
  double hot_fraction_;
  uint64_t hot_lines_;
  Rng rng_;
  uint64_t issued_ = 0;
};

// Dependent loads over a random permutation cycle (latency-bound, ILP 1).
class PointerChaseWorkload : public InstructionStream {
 public:
  PointerChaseWorkload(VirtAddr base, uint64_t bytes, uint64_t total_ops, uint64_t seed);

  CoreOp Next() override;
  uint32_t IlpHint() const override { return 1; }

 private:
  VirtAddr base_;
  std::vector<uint32_t> next_line_;  // Permutation cycle.
  uint64_t total_ops_;
  uint64_t issued_ = 0;
  uint32_t cursor_ = 0;
};

// Everything a workload constructor needs, bundled so registry entries
// share one signature. Kinds that ignore a field (e.g. hotspot/chase
// never store) simply do not read it.
struct WorkloadParams {
  DomainId domain = kInvalidDomain;
  VirtAddr base = 0;
  uint64_t bytes = 0;
  uint64_t total_ops = 0;
  uint64_t seed = 1;
};

// String-keyed workload registry, mirroring the defense/hw/attack kind
// registries in sim/scenario.h: canonical names are what CLIs, sweep
// specs, and tenant traffic mixes address workloads by.
using WorkloadFactory = std::unique_ptr<InstructionStream> (*)(const WorkloadParams&);

// All canonical workload kind names, in registration order.
const std::vector<std::string>& AllWorkloadKinds();
// Comma-joined canonical names, for CLI help strings.
std::string KnownWorkloadKinds();
// True iff `kind` names a registered workload.
bool IsWorkloadKind(const std::string& kind);
// Factory for `kind`, or nullptr if unknown.
WorkloadFactory WorkloadFactoryFor(const std::string& kind);

// Registry-backed construction. Returns nullptr for unknown kinds.
std::unique_ptr<InstructionStream> MakeWorkload(const std::string& kind,
                                                const WorkloadParams& params);

// Back-compatible factory by name, for sweep-style experiment tables.
std::unique_ptr<InstructionStream> MakeWorkload(const std::string& kind, DomainId domain,
                                                VirtAddr base, uint64_t bytes,
                                                uint64_t total_ops, uint64_t seed);

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_WORKLOADS_H_
