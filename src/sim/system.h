// Full-system wiring: cores + shared LLC + DMA engines + memory
// controller + DRAM + host kernel + an optional software defense, driven
// by a single DRAM-clock cycle loop.
#ifndef HAMMERTIME_SRC_SIM_SYSTEM_H_
#define HAMMERTIME_SRC_SIM_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/telemetry/sampler.h"
#include "common/telemetry/trace.h"
#include "common/types.h"
#include "cpu/cache.h"
#include "cpu/core.h"
#include "cpu/dma.h"
#include "defense/defense.h"
#include "dram/config.h"
#include "mc/controller.h"
#include "os/allocator.h"
#include "os/kernel.h"

namespace ht {

enum class AllocPolicy : uint8_t {
  kLinear,
  kBankAware,
  kGuardRows,
  kSubarrayAware,
};

const char* ToString(AllocPolicy policy);

// Observability knobs. Off by default: a null trace buffer and a zero
// sample period cost one predictable branch each on the hot path.
struct TelemetryConfig {
  // Borrowed buffer (owned by a TraceSink); nullptr = tracing off. The
  // System fans it out to the MC, devices, ACT counters, kernel, and the
  // installed defense, so one scenario's events share one buffer.
  TraceBuffer* trace = nullptr;
  // Snapshot all component StatSets every N cycles; 0 = sampling off.
  // Samples land on exact k*N boundaries whether or not skip_idle is on.
  Cycle sample_every = 0;
};

struct SystemConfig {
  DramConfig dram = DramConfig::SimDefault();
  McConfig mc;
  CacheConfig cache;
  CoreConfig core;
  uint32_t cores = 4;
  AllocPolicy alloc = AllocPolicy::kLinear;
  // GuardRows needs the expected tenant count and radius up front.
  uint32_t guard_domains = 4;
  uint32_t guard_blast = 2;
  // Fast-forward the clock across provably idle stretches (cycles where
  // no component's Tick could change state or emit a stat). Produces
  // bit-identical results to per-cycle ticking; disable to cross-check.
  bool skip_idle = true;
  TelemetryConfig telemetry;
};

class System {
 public:
  explicit System(const SystemConfig& config);

  // --- Setup ------------------------------------------------------------

  DomainId AddDomain(const DomainSpec& spec) { return kernel_->CreateDomain(spec); }

  // Binds core `index` to a domain and instruction stream.
  void AssignCore(uint32_t index, DomainId domain, std::unique_ptr<InstructionStream> stream,
                  bool is_host = false);

  // Binds core `index` as a multiplexing carrier for many tenants: VAs
  // are translated (and MC-side domain accounting tagged) through the
  // domain encoded in each VA, so thousands of trust domains can share a
  // handful of cores. `carrier_domain` is the domain charged for traffic
  // with no recoverable tenant (writebacks).
  void AssignMuxCore(uint32_t index, DomainId carrier_domain,
                     std::unique_ptr<InstructionStream> stream);

  DmaEngine& AddDma(DomainId domain, const DmaConfig& dma_config);

  void InstallDefense(std::unique_ptr<Defense> defense);
  Defense* defense() { return defense_.get(); }

  // --- Run --------------------------------------------------------------

  void RunFor(Cycle cycles);
  // Runs until every core halted and the MC drained, or `max_cycles`.
  void RunUntilQuiesced(Cycle max_cycles);
  Cycle now() const { return now_; }
  void set_skip_idle(bool skip) { config_.skip_idle = skip; }

  // Writes back all dirty LLC lines to DRAM (end-of-run accounting before
  // golden verification).
  void DrainCaches();

  // --- Access -----------------------------------------------------------

  HostKernel& kernel() { return *kernel_; }
  MemoryController& mc() { return *mc_; }
  Cache& llc() { return *llc_; }
  Core& core(uint32_t index) { return *cores_[index]; }
  uint32_t core_count() const { return static_cast<uint32_t>(cores_.size()); }
  FrameAllocator& allocator() { return *allocator_; }
  const SystemConfig& config() const { return config_; }

  // Aggregate run metrics.
  uint64_t TotalOpsCompleted() const;
  uint64_t TotalFlips() const { return mc_->TotalFlipEvents(); }
  double RowHitRate() const;
  double AvgReadLatency() const;
  // Tail (p99) read latency — the cloud benchmarks' victim-facing metric:
  // mitigations that throttle or migrate under attack show up here long
  // before they dent the mean.
  double P99ReadLatency() const;

  // --- Telemetry ---------------------------------------------------------

  const StatSampler& sampler() const { return sampler_; }

  // One StatSet merging every component's stats (MC, per-channel devices
  // and their ECC counters, LLC, cores, DMA engines, kernel, defense) for
  // end-of-run reports. Per-channel counters sum together.
  StatSet CollectStats() const;

 private:
  std::unique_ptr<FrameAllocator> MakeAllocator() const;

  // Ticks every component once at now_, advances the clock, and — when
  // idle skipping is on — jumps straight to the earliest NextWake cycle,
  // clamped to `end`.
  void Step(Cycle end);
  // Minimum NextWake over the MC, cores, DMA engines, and defense.
  Cycle NextWakeCycle(Cycle now) const;

  SystemConfig config_;
  std::unique_ptr<MemoryController> mc_;
  std::unique_ptr<FrameAllocator> allocator_;
  std::unique_ptr<HostKernel> kernel_;
  std::unique_ptr<Cache> llc_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<DmaEngine>> dmas_;
  std::unique_ptr<Defense> defense_;
  Cycle now_ = 0;
  StatSampler sampler_;
  Cycle sample_next_ = kNeverCycle;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_SYSTEM_H_
