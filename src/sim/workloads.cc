#include "sim/workloads.h"

#include <numeric>

#include "os/kernel.h"

namespace ht {

StreamWorkload::StreamWorkload(DomainId domain, VirtAddr base, uint64_t bytes,
                               uint64_t total_ops, double write_fraction, uint64_t seed)
    : domain_(domain), base_(base), lines_(bytes / kLineBytes), total_ops_(total_ops),
      write_fraction_(write_fraction), rng_(seed) {}

CoreOp StreamWorkload::Next() {
  if (issued_ >= total_ops_ || lines_ == 0) {
    return CoreOp::Halt();
  }
  ++issued_;
  const VirtAddr va = base_ + (cursor_ % lines_) * kLineBytes;
  ++cursor_;
  if (rng_.NextBool(write_fraction_)) {
    return CoreOp::Store(va, HostKernel::PatternValue(domain_, va));
  }
  return CoreOp::Load(va);
}

RandomWorkload::RandomWorkload(DomainId domain, VirtAddr base, uint64_t bytes,
                               uint64_t total_ops, double write_fraction, uint64_t seed)
    : domain_(domain), base_(base), lines_(bytes / kLineBytes), total_ops_(total_ops),
      write_fraction_(write_fraction), rng_(seed) {}

CoreOp RandomWorkload::Next() {
  if (issued_ >= total_ops_ || lines_ == 0) {
    return CoreOp::Halt();
  }
  ++issued_;
  const VirtAddr va = base_ + rng_.NextBelow(lines_) * kLineBytes;
  if (rng_.NextBool(write_fraction_)) {
    return CoreOp::Store(va, HostKernel::PatternValue(domain_, va));
  }
  return CoreOp::Load(va);
}

HotspotWorkload::HotspotWorkload(VirtAddr base, uint64_t bytes, uint64_t total_ops,
                                 double hot_fraction, uint64_t hot_lines, uint64_t seed)
    : base_(base), lines_(bytes / kLineBytes), total_ops_(total_ops),
      hot_fraction_(hot_fraction), hot_lines_(std::min(hot_lines, bytes / kLineBytes)),
      rng_(seed) {}

CoreOp HotspotWorkload::Next() {
  if (issued_ >= total_ops_ || lines_ == 0) {
    return CoreOp::Halt();
  }
  ++issued_;
  uint64_t line;
  if (hot_lines_ > 0 && rng_.NextBool(hot_fraction_)) {
    line = rng_.NextBelow(hot_lines_);
  } else {
    line = rng_.NextBelow(lines_);
  }
  return CoreOp::Load(base_ + line * kLineBytes);
}

PointerChaseWorkload::PointerChaseWorkload(VirtAddr base, uint64_t bytes, uint64_t total_ops,
                                           uint64_t seed)
    : base_(base), total_ops_(total_ops) {
  const uint64_t lines = std::max<uint64_t>(1, bytes / kLineBytes);
  // Sattolo's algorithm: a single cycle covering every line.
  std::vector<uint32_t> order(lines);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (uint64_t i = lines - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBelow(i)]);
  }
  next_line_.assign(lines, 0);
  for (uint64_t i = 0; i < lines; ++i) {
    next_line_[order[i]] = order[(i + 1) % lines];
  }
}

CoreOp PointerChaseWorkload::Next() {
  if (issued_ >= total_ops_) {
    return CoreOp::Halt();
  }
  ++issued_;
  cursor_ = next_line_[cursor_];
  return CoreOp::Load(base_ + static_cast<VirtAddr>(cursor_) * kLineBytes);
}

namespace {

// Registry table in the style of scenario.cc's KindEntry registries:
// canonical name + factory. Declaration order is the canonical listing
// order reported by AllWorkloadKinds()/KnownWorkloadKinds().
struct WorkloadEntry {
  const char* name;
  WorkloadFactory factory;
};

const WorkloadEntry kWorkloadKinds[] = {
    {"stream",
     [](const WorkloadParams& p) -> std::unique_ptr<InstructionStream> {
       return std::make_unique<StreamWorkload>(p.domain, p.base, p.bytes, p.total_ops, 0.2,
                                               p.seed);
     }},
    {"random",
     [](const WorkloadParams& p) -> std::unique_ptr<InstructionStream> {
       return std::make_unique<RandomWorkload>(p.domain, p.base, p.bytes, p.total_ops, 0.2,
                                               p.seed);
     }},
    {"hotspot",
     [](const WorkloadParams& p) -> std::unique_ptr<InstructionStream> {
       return std::make_unique<HotspotWorkload>(p.base, p.bytes, p.total_ops, 0.9, 64, p.seed);
     }},
    {"chase",
     [](const WorkloadParams& p) -> std::unique_ptr<InstructionStream> {
       return std::make_unique<PointerChaseWorkload>(p.base, p.bytes, p.total_ops, p.seed);
     }},
};

}  // namespace

const std::vector<std::string>& AllWorkloadKinds() {
  static const std::vector<std::string> kinds = [] {
    std::vector<std::string> names;
    for (const WorkloadEntry& entry : kWorkloadKinds) {
      names.push_back(entry.name);
    }
    return names;
  }();
  return kinds;
}

std::string KnownWorkloadKinds() {
  std::string joined;
  for (const WorkloadEntry& entry : kWorkloadKinds) {
    if (!joined.empty()) {
      joined += ",";
    }
    joined += entry.name;
  }
  return joined;
}

bool IsWorkloadKind(const std::string& kind) { return WorkloadFactoryFor(kind) != nullptr; }

WorkloadFactory WorkloadFactoryFor(const std::string& kind) {
  for (const WorkloadEntry& entry : kWorkloadKinds) {
    if (kind == entry.name) {
      return entry.factory;
    }
  }
  return nullptr;
}

std::unique_ptr<InstructionStream> MakeWorkload(const std::string& kind,
                                                const WorkloadParams& params) {
  const WorkloadFactory factory = WorkloadFactoryFor(kind);
  return factory == nullptr ? nullptr : factory(params);
}

std::unique_ptr<InstructionStream> MakeWorkload(const std::string& kind, DomainId domain,
                                                VirtAddr base, uint64_t bytes,
                                                uint64_t total_ops, uint64_t seed) {
  return MakeWorkload(kind, WorkloadParams{domain, base, bytes, total_ops, seed});
}

}  // namespace ht
