#include "sim/runner/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <utility>

#include "attack/hammer.h"
#include "attack/pattern.h"
#include "attack/planner.h"
#include "common/telemetry/binary.h"
#include "common/telemetry/profile.h"
#include "common/telemetry/report.h"
#include "common/thread_pool.h"
#include "os/address_space.h"
#include "sim/workloads.h"

namespace ht {

Cycle BenchSmokeCap() {
  static const Cycle cap = [] {
    const char* env = std::getenv("HT_BENCH_SMOKE");
    if (env == nullptr || *env == '\0') {
      return kNeverCycle;
    }
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    return (end != env && parsed > 0) ? static_cast<Cycle>(parsed) : Cycle{20000};
  }();
  return cap;
}

RunnerTelemetryOptions& RunnerTelemetry() {
  static RunnerTelemetryOptions options;
  return options;
}

namespace {

// Accumulated across RunScenarios calls (an experiment main typically
// runs several batches); the output files are rewritten after each batch
// so a crash mid-run still leaves the completed scenarios on disk.
struct RunnerTelemetryState {
  std::unique_ptr<TraceSink> sink = std::make_unique<TraceSink>();
  std::vector<JsonValue> reports;
  size_t scenarios_started = 0;
};

RunnerTelemetryState& TelemetryState() {
  static RunnerTelemetryState state;
  return state;
}

}  // namespace

void ResetRunnerTelemetry() {
  TelemetryState().sink = std::make_unique<TraceSink>();
  TelemetryState().reports.clear();
  TelemetryState().scenarios_started = 0;
}

JsonValue ScenarioSpecToJson(const ScenarioSpec& spec) {
  JsonValue config = JsonValue::Object();
  config.Set("defense", JsonValue::Str(ToString(spec.defense)));
  config.Set("hw_mitigation", JsonValue::Str(ToString(spec.hw)));
  config.Set("attack", JsonValue::Str(ToString(spec.attack)));
  config.Set("alloc", JsonValue::Str(ToString(spec.system.alloc)));
  config.Set("sides", JsonValue::Uint(spec.sides));
  config.Set("pattern_seed", JsonValue::Uint(spec.pattern_seed));
  config.Set("act_threshold", JsonValue::Uint(spec.act_threshold));
  config.Set("run_cycles", JsonValue::Uint(std::min(spec.run_cycles, BenchSmokeCap())));
  config.Set("tenants", JsonValue::Uint(spec.tenants));
  config.Set("pages_per_tenant", JsonValue::Uint(spec.pages_per_tenant));
  config.Set("benign_corunner", JsonValue::Bool(spec.benign_corunner));
  config.Set("traffic_mix", JsonValue::Str(spec.traffic_mix));
  config.Set("churn_rate", JsonValue::Double(spec.churn_rate));
  config.Set("epochs", JsonValue::Uint(spec.epochs));
  config.Set("attacker_slot", JsonValue::Uint(spec.attacker_slot));
  config.Set("victim_slot", JsonValue::Uint(spec.victim_slot));
  config.Set("skip_idle", JsonValue::Bool(spec.system.skip_idle));
  config.Set("channels", JsonValue::Uint(spec.system.dram.org.channels));
  config.Set("cores", JsonValue::Uint(spec.system.cores));
  return config;
}

JsonValue ScenarioResultToJson(const ScenarioResult& result) {
  JsonValue out = JsonValue::Object();
  out.Set("flip_events", JsonValue::Uint(result.security.flip_events));
  out.Set("cross_domain_flips", JsonValue::Uint(result.security.cross_domain_flips));
  out.Set("intra_domain_flips", JsonValue::Uint(result.security.intra_domain_flips));
  out.Set("corrupted_lines", JsonValue::Uint(result.security.corrupted_lines));
  out.Set("dos_lockups", JsonValue::Uint(result.security.dos_lockups));
  out.Set("ops", JsonValue::Uint(result.perf.ops));
  out.Set("cycles", JsonValue::Uint(result.perf.cycles));
  out.Set("ops_per_kcycle", JsonValue::Double(result.perf.ops_per_kcycle));
  out.Set("row_hit_rate", JsonValue::Double(result.perf.row_hit_rate));
  out.Set("avg_read_latency", JsonValue::Double(result.perf.avg_read_latency));
  out.Set("p99_read_latency", JsonValue::Double(result.perf.p99_read_latency));
  out.Set("extra_acts", JsonValue::Uint(result.perf.extra_acts));
  out.Set("defense_interrupts", JsonValue::Uint(result.defense_interrupts));
  out.Set("page_moves", JsonValue::Uint(result.page_moves));
  out.Set("throttle_stalls", JsonValue::Uint(result.throttle_stalls));
  out.Set("mitigation_refreshes", JsonValue::Uint(result.mitigation_refreshes));
  out.Set("attack_planned", JsonValue::Bool(result.attack_planned));
  out.Set("escaped_flips", JsonValue::Uint(result.escaped_flips));
  out.Set("tenants_hit", JsonValue::Uint(result.tenants_hit));
  out.Set("churn_events", JsonValue::Uint(result.churn_events));
  out.Set("flips_escaped_per_tenant", JsonValue::Double(result.flips_escaped_per_tenant));
  out.Set("tenant_map_fingerprint", JsonValue::Uint(result.tenant_map_fingerprint));
  return out;
}

namespace {

// Builds the attack plan for `attacker` against `victim` and installs the
// resulting stream/engine — the cross-domain sandwich when adjacency
// allows it, falling back to hammering the attacker's own rows (and
// clearing result->attack_planned) when isolation denies a plan. Shared
// by the classic two-tenant path and the cloud tenant-population path.
void PlanAndInstallAttack(System& system, const ScenarioSpec& spec, DomainId attacker,
                          DomainId victim, ScenarioResult* result) {
  std::optional<HammerPlan> plan;
  std::optional<HammeringPattern> pattern;
  if (spec.attack != AttackKind::kNone) {
    if (spec.attack == AttackKind::kManySided) {
      plan = PlanManySided(system.kernel(), attacker, spec.sides);
    } else if (spec.attack == AttackKind::kPattern) {
      // The pattern determines how many distinct rows (aggressors +
      // fillers) the planner must find in one bank.
      pattern = BuildScenarioPattern(spec.system.dram, spec.pattern_seed);
      plan = PlanManySided(system.kernel(), attacker, pattern->total_ids(), 2);
      if (!plan.has_value()) {
        result->attack_planned = false;
        pattern.reset();  // Fall back to plain double-sided hammering.
        plan = PlanManySided(system.kernel(), attacker, 2);
      }
    } else if (spec.attack == AttackKind::kHalfDouble) {
      plan = PlanHalfDoubleCross(system.kernel(), attacker, victim);
      if (!plan.has_value()) {
        result->attack_planned = false;
        plan = PlanManySided(system.kernel(), attacker, 2, 4);
      }
    } else {
      plan = PlanDoubleSidedCross(system.kernel(), attacker, victim);
      if (!plan.has_value()) {
        result->attack_planned = false;
        plan = PlanManySided(system.kernel(), attacker, 2);
      }
    }
  }

  if (!plan.has_value()) {
    return;
  }
  switch (spec.attack) {
    case AttackKind::kNone:
      break;
    case AttackKind::kDoubleSided:
    case AttackKind::kManySided:
    case AttackKind::kHalfDouble: {
      HammerConfig hammer;
      hammer.aggressors = plan->aggressor_vas;
      system.AssignCore(0, attacker, std::make_unique<HammerStream>(hammer));
      break;
    }
    case AttackKind::kPattern: {
      if (pattern.has_value()) {
        PatternStreamConfig stream;
        stream.pattern = *pattern;
        stream.vas = plan->aggressor_vas;
        system.AssignCore(0, attacker,
                          std::make_unique<PatternHammerStream>(std::move(stream)));
      } else {
        HammerConfig hammer;
        hammer.aggressors = plan->aggressor_vas;
        system.AssignCore(0, attacker, std::make_unique<HammerStream>(hammer));
      }
      break;
    }
    case AttackKind::kDma: {
      DmaConfig dma;
      dma.pattern = plan->aggressor_addrs;
      dma.period = 8;
      system.AddDma(attacker, dma);
      break;
    }
    case AttackKind::kAdaptive: {
      auto decoys = PlanManySided(system.kernel(), attacker, 2, 2,
                                  BankTriple{plan->channel, plan->rank, plan->bank});
      AdaptiveHammerConfig adaptive;
      adaptive.aggressors = plan->aggressor_vas;
      adaptive.decoys = decoys.has_value() ? decoys->aggressor_vas : plan->aggressor_vas;
      adaptive.counter_threshold = spec.act_threshold;
      adaptive.safety_margin = spec.act_threshold / 10;
      system.AssignCore(0, attacker, std::make_unique<AdaptiveHammerStream>(adaptive));
      break;
    }
  }
}

// SplitMix64-style mixer for deriving the cloud path's independent seeds
// (tenant manager, per-carrier mux RNGs) from the scenario seed.
uint64_t CloudSeed(uint64_t seed, uint64_t salt) {
  uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ScenarioResult RunScenario(ScenarioSpec spec, ScenarioTelemetry* telemetry,
                           const ScenarioHooks* hooks) {
  const auto wall_start = std::chrono::steady_clock::now();
  ProfilePhase total_phase("runner.scenario");
  ApplyDefensePreset(spec.system, spec.defense, spec.act_threshold);
  spec.run_cycles = std::min(spec.run_cycles, BenchSmokeCap());
  if (spec.randomize_reset.has_value()) {
    spec.system.mc.act_counter.randomize_reset = *spec.randomize_reset;
  }
  if (RunnerTelemetry().shard_min_window != 0) {
    spec.system.mc.shard_min_window = RunnerTelemetry().shard_min_window;
  }
  if (spec.seed != 0) {
    // Perturb every RNG stream deterministically; distinct multipliers
    // keep the derived seeds decorrelated from one another.
    const uint64_t mix = spec.seed * 0x9E3779B97F4A7C15ull;
    spec.system.dram.flip_seed ^= mix;
    spec.system.dram.remap.seed ^= mix * 3;
    spec.system.mc.act_counter.rng_seed ^= mix * 5;
  }
  if (telemetry != nullptr) {
    spec.system.telemetry.trace = telemetry->trace;
    spec.system.telemetry.sample_every = telemetry->sample_every;
  }
  System system(spec.system);
  ScenarioResult result;

  if (!spec.traffic_mix.empty()) {
    // --- Cloud host path: tenant population + epoch loop ------------------
    TenantConfig tenant_config;
    tenant_config.slots = spec.tenants;
    tenant_config.pages_per_slot = spec.pages_per_tenant;
    tenant_config.mix = spec.traffic_mix;
    tenant_config.churn_rate = spec.churn_rate;
    tenant_config.attacker_slot = spec.attacker_slot;
    tenant_config.victim_slot = spec.victim_slot;
    // Co-locate the pinned pair in row-group turns and give the attacker
    // enough rows for the widest pattern plan. Under permissive placement
    // this yields the cross-tenant sandwich; isolation-centric placement
    // breaks it, which the planner reports as attack_planned = false.
    const uint64_t row_group = PagesPerRowGroup(system.mc().mapper());
    tenant_config.placement_chunk = row_group;
    tenant_config.attacker_pages = std::max<uint64_t>(spec.pages_per_tenant, 16 * row_group);
    tenant_config.victim_pages = std::max<uint64_t>(spec.pages_per_tenant, 2 * row_group);
    tenant_config.seed = CloudSeed(spec.seed, 0x7e);
    tenant_config.stream_factory = [](const std::string& kind, DomainId domain, VirtAddr base,
                                      uint64_t bytes, uint64_t seed) {
      // Effectively unbounded ops: tenant traffic never self-halts.
      return MakeWorkload(kind, domain, base, bytes, ~0ull >> 1, seed);
    };
    TenantManager tenants(&system.kernel(), &system.llc(), tenant_config);
    tenants.Init();
    const DomainId attacker = tenants.DomainOf(spec.attacker_slot);
    const DomainId victim = tenants.DomainOf(spec.victim_slot);
    system.InstallDefense(MakeDefense(spec.defense, spec.system.dram));
    InstallHwMitigation(system, spec.hw);
    if (attacker != kInvalidDomain) {
      PlanAndInstallAttack(system, spec, attacker, victim, &result);
    } else {
      result.attack_planned = false;
    }
    // Every non-attack core is a carrier multiplexing a shard of the
    // tenant population; VAs are domain-namespaced so the mux translator
    // recovers the issuing tenant per access.
    const uint32_t carriers = system.core_count() > 1 ? system.core_count() - 1 : 0;
    for (uint32_t carrier = 0; carrier < carriers; ++carrier) {
      system.AssignMuxCore(carrier + 1, kInvalidDomain,
                           std::make_unique<TenantMuxStream>(
                               &tenants, carrier, carriers, CloudSeed(spec.seed, carrier + 2)));
    }

    if (hooks != nullptr && hooks->on_start) {
      hooks->on_start(system);
    }

    {
      // Epoch loop: run a window, classify the window's flips against
      // current ownership, then churn part of the population. The final
      // window absorbs the division remainder; no churn after the last
      // harvest, so end-of-run state matches the last classification.
      ProfilePhase run_phase("runner.run");
      const uint32_t epochs = std::max<uint32_t>(1, spec.epochs);
      const Cycle window = spec.run_cycles / epochs;
      for (uint32_t epoch = 0; epoch < epochs; ++epoch) {
        const Cycle budget =
            epoch + 1 == epochs ? spec.run_cycles - window * (epochs - 1) : window;
        system.RunFor(budget);
        tenants.HarvestFlips();
        if (epoch + 1 < epochs) {
          tenants.Churn(epoch);
        }
      }
    }

    ProfilePhase report_phase("runner.report");
    // Tenant-level accounting replaces end-of-run AttributeFlips: flips
    // were classified per epoch against the ownership they occurred
    // under, which churn would otherwise misattribute.
    system.DrainCaches();
    const VerifyResult verify = system.kernel().VerifyAll();
    result.security.flip_events = system.TotalFlips();
    result.security.cross_domain_flips = tenants.escaped_flips();
    result.security.intra_domain_flips = tenants.intra_tenant_flips();
    result.security.corrupted_lines = verify.corrupted_lines;
    result.security.dos_lockups = verify.dos_lockups;
    result.perf = Summarize(system, spec.run_cycles);
    result.escaped_flips = tenants.escaped_flips();
    result.tenants_hit = tenants.tenants_hit();
    result.churn_events = tenants.churn_events();
    result.flips_escaped_per_tenant =
        spec.tenants == 0 ? 0.0
                          : static_cast<double>(tenants.escaped_flips()) /
                                static_cast<double>(spec.tenants);
    result.tenant_map_fingerprint = tenants.PageMapFingerprint();
    if (hooks != nullptr && hooks->on_tenants) {
      hooks->on_tenants(tenants);
    }
  } else {
    // --- Classic two-tenant path ------------------------------------------
    // Half-double needs tenants owning pairs of adjacent rows so a victim
    // sits at distance two from attacker rows.
    const uint64_t chunk = spec.attack == AttackKind::kHalfDouble
                               ? 2 * PagesPerRowGroup(system.mc().mapper())
                               : 0;
    auto tenants = SetupTenants(system, spec.tenants, spec.pages_per_tenant, chunk);
    const DomainId attacker = tenants[0];
    const DomainId victim = tenants.size() > 1 ? tenants[1] : tenants[0];
    system.InstallDefense(MakeDefense(spec.defense, spec.system.dram));
    InstallHwMitigation(system, spec.hw);

    // Attack plan: prefer the cross-domain sandwich; fall back to hammering
    // the attacker's own rows when isolation denies adjacency.
    PlanAndInstallAttack(system, spec, attacker, victim, &result);

    if (spec.benign_corunner && system.core_count() > 1) {
      system.AssignCore(1, victim,
                        MakeWorkload("random", victim, AddressSpace::BaseFor(victim),
                                     spec.pages_per_tenant * kPageBytes,
                                     ~0ull >> 1, 99));
    }

    if (hooks != nullptr && hooks->on_start) {
      hooks->on_start(system);
    }

    {
      ProfilePhase run_phase("runner.run");
      system.RunFor(spec.run_cycles);
    }

    ProfilePhase report_phase("runner.report");
    result.security = Assess(system);
    result.perf = Summarize(system, spec.run_cycles);
  }

  if (system.defense() != nullptr) {
    result.defense_interrupts = system.defense()->stats().Get("defense.interrupts") +
                                system.defense()->stats().Get("defense.detections");
  }
  result.page_moves = system.kernel().page_moves();
  result.throttle_stalls = system.mc().stats().Get("mc.throttle_stalls");
  result.mitigation_refreshes = system.mc().stats().Get("mc.mitigation_refreshes");

  if (telemetry != nullptr) {
    telemetry->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    TraceCounts counts;
    if (telemetry->trace != nullptr) {
      counts.trace_events = telemetry->trace->events_emitted();
      counts.trace_dropped = telemetry->trace->events_dropped();
    }
    counts.samples_taken = system.sampler().samples_taken();
    telemetry->report = BuildRunReport(telemetry->label, ScenarioSpecToJson(spec),
                                       ScenarioResultToJson(result), system.CollectStats(),
                                       &system.sampler(), telemetry->wall_seconds, counts);
  }
  if (hooks != nullptr && hooks->on_finish) {
    hooks->on_finish(system);
  }
  if (Profiler::Global().enabled()) [[unlikely]] {
    // Shard-wait breakdown for the per-channel parallel event loop; cold
    // read of interned counters, once per scenario.
    Profiler& profiler = Profiler::Global();
    const StatSet& mc_stats = system.mc().stats();
    profiler.AddCounter("mc.wake_batches", mc_stats.Get("mc.wake_batches"));
    profiler.AddCounter("mc.sync_barriers", mc_stats.Get("mc.sync_barriers"));
    profiler.AddCounter("mc.shard_wait_cycles", mc_stats.Get("mc.shard_wait_cycles"));
    profiler.AddCounter("runner.scenarios", 1);
    profiler.AddCounter("runner.simulated_cycles", spec.run_cycles);
  }
  return result;
}

void FlushRunnerTelemetry() {
  const RunnerTelemetryOptions& options = RunnerTelemetry();
  RunnerTelemetryState& state = TelemetryState();
  ProfilePhase flush_phase("telemetry.flush");
  if (!options.trace_out.empty()) {
    std::string error;
    WriteTraceOutput(options.trace_out, *state.sink, &error);
  }
  if (!options.metrics_out.empty()) {
    // MakeMetricsDocument consumes its input; hand it a copy so later
    // batches can re-flush the full accumulated list.
    JsonValue doc = MakeMetricsDocument(state.reports);
    Profiler::Global().MaybeAttachTo(doc);
    std::string error;
    WriteTelemetryDocument(options.metrics_out, doc, &error);
  }
}

std::vector<ScenarioResult> RunScenarios(const std::vector<ScenarioSpec>& specs,
                                         unsigned threads) {
  std::vector<ScenarioResult> results(specs.size());
  const RunnerTelemetryOptions& options = RunnerTelemetry();
  const bool telemetry_on = !options.trace_out.empty() || !options.metrics_out.empty();
  // A single scenario never pays thread-count resolution or pool setup.
  const unsigned workers = specs.size() <= 1 ? 1u : ResolveThreadCount(threads);
  // While more than one scenario shares the pool, per-MC shard worker
  // groups stand down (channel shards route through the same pool) so the
  // two fan-out levels keep drawing from one thread budget.
  std::optional<PoolFanoutRegion> fanout;
  if (specs.size() > 1 && workers > 1) {
    fanout.emplace();
  }
  if (!telemetry_on) {
    ParallelFor(specs.size(), workers,
                [&](uint64_t i) { results[i] = RunScenario(specs[i]); });
    return results;
  }

  // Buffers are created serially in spec order before the fan-out, so the
  // merged trace and the report order are identical for any worker count.
  RunnerTelemetryState& state = TelemetryState();
  std::vector<ScenarioTelemetry> telemetry(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    telemetry[i].label = "scenario" + std::to_string(state.scenarios_started + i) + "." +
                         ToString(specs[i].defense) + "." + ToString(specs[i].attack);
    if (!options.trace_out.empty()) {
      telemetry[i].trace = state.sink->CreateBuffer(telemetry[i].label);
    }
    telemetry[i].sample_every = options.sample_every;
  }
  state.scenarios_started += specs.size();
  ParallelFor(specs.size(), workers,
              [&](uint64_t i) { results[i] = RunScenario(specs[i], &telemetry[i]); });
  for (ScenarioTelemetry& scenario : telemetry) {
    state.reports.push_back(std::move(scenario.report));
  }
  FlushRunnerTelemetry();
  return results;
}

void AddRunnerFlags(ArgParser& parser) {
  parser.Option("threads", "N",
                "worker threads for scenario fan-out (0 = auto). Scenario fan-out and "
                "per-scenario channel sharding draw from one shared pool (sized by "
                "HT_THREADS or hardware concurrency), so N caps concurrent scenarios "
                "while idle workers help shard channels inside running scenarios",
                "0");
  parser.Option("trace-out", "PATH",
                "write an event trace: Chrome trace_event JSON, or compact "
                "hammertime.bin.v1 when PATH ends in .htb");
  parser.Option("metrics-out", "PATH",
                "write a hammertime.metrics.v1 run report (binary when PATH ends in .htb)");
  parser.Option("sample-every", "N",
                "stat-sampler period in cycles (default 16384 when --metrics-out is set)");
  parser.Option("shard-min-window", "N",
                "minimum adaptive channel-shard window in cycles (0 = keep each "
                "scenario's configured value, default 64); coupling-free stretches "
                "shorter than N run on the serial event path");
  parser.Flag("profile",
              "self-profile the harness (phase timers, pool gauges) into the metrics "
              "report's profile section; also honored via HT_PROFILE=1");
}

unsigned ApplyRunnerFlags(const ArgParser& parser) {
  RunnerTelemetryOptions& options = RunnerTelemetry();
  options.trace_out = parser.Get("trace-out");
  options.metrics_out = parser.Get("metrics-out");
  options.sample_every = parser.GetUint("sample-every");
  if (!options.metrics_out.empty() && options.sample_every == 0) {
    options.sample_every = kDefaultSampleEvery;
  }
  options.shard_min_window = parser.GetUint("shard-min-window");
  const char* env_profile = std::getenv("HT_PROFILE");
  if (parser.GetBool("profile") ||
      (env_profile != nullptr && *env_profile != '\0' && *env_profile != '0')) {
    Profiler::Global().Enable();
  }
  return static_cast<unsigned>(parser.GetUint("threads"));
}

}  // namespace ht
