// The scenario runner library: the one place that knows how to turn a
// declarative ScenarioSpec (system + attack + defense combination) into a
// configured System, run it, and collect outcome metrics — serially, on
// the shared worker pool, or with telemetry attached. Consumed by the
// experiment benches, hammertime_cli, hammerfuzz, the sweep engine, and
// the tests; bench/bench_util.h only adds bench-main conveniences on top.
#ifndef HAMMERTIME_SRC_SIM_RUNNER_RUNNER_H_
#define HAMMERTIME_SRC_SIM_RUNNER_RUNNER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "common/telemetry/json.h"
#include "common/telemetry/trace.h"
#include "common/types.h"
#include "os/tenant.h"
#include "sim/scenario.h"
#include "sim/system.h"

namespace ht {

struct ScenarioSpec {
  SystemConfig system;
  DefenseKind defense = DefenseKind::kNone;
  HwMitigationKind hw = HwMitigationKind::kNone;
  AttackKind attack = AttackKind::kDoubleSided;
  uint32_t sides = 16;             // For kManySided.
  uint64_t pattern_seed = 0;       // For kPattern: PatternBuilder seed.
  uint64_t act_threshold = 256;    // Interrupt threshold for SW defenses.
  std::optional<bool> randomize_reset;  // Override the preset's choice.
  Cycle run_cycles = 800000;
  uint32_t tenants = 2;
  uint64_t pages_per_tenant = 512;
  bool benign_corunner = false;    // Victim tenant runs a random workload.
  // --- Cloud host model (src/os/tenant.h) -----------------------------------
  // A non-empty traffic mix switches RunScenario into cloud mode:
  // `tenants` becomes the slot count of a TenantManager population whose
  // streams multiplex onto the non-attacker cores, the run is split into
  // `epochs` windows with flip harvesting and churn at each boundary, and
  // per-tenant escape accounting replaces end-of-run flip attribution.
  // Empty = the classic two-tenant path, byte-identical to before.
  std::string traffic_mix;
  double churn_rate = 0.0;     // Fraction of eligible slots recycled per epoch.
  uint32_t epochs = 8;         // Harvest/churn boundaries per run (cloud mode).
  uint32_t attacker_slot = 0;  // Slot hammering; pinned across churn.
  uint32_t victim_slot = 1;    // Pinned co-located victim slot.
  // Stochastic-variation knob for sweeps: a nonzero seed perturbs the
  // simulation's RNG streams (flip patterns, randomized counter resets,
  // vendor remap) deterministically; 0 leaves the stock seeds untouched,
  // so all pre-sweep results are unchanged.
  uint64_t seed = 0;
};

struct ScenarioResult {
  SecurityOutcome security;
  PerfSummary perf;
  uint64_t defense_interrupts = 0;
  uint64_t page_moves = 0;
  uint64_t throttle_stalls = 0;
  uint64_t mitigation_refreshes = 0;
  bool attack_planned = true;  // False if isolation denied the attacker a plan.
  // --- Cloud mode (zero on the classic path) --------------------------------
  uint64_t escaped_flips = 0;      // Flips crossing a tenant allocation boundary.
  uint64_t tenants_hit = 0;        // Distinct victim slots receiving escapes.
  uint64_t churn_events = 0;       // Tenant slots recycled over the run.
  double flips_escaped_per_tenant = 0.0;  // escaped_flips / tenant slots.
  uint64_t tenant_map_fingerprint = 0;    // End-of-run page-map hash (determinism).
};

// Smoke-test cap on per-scenario cycle budgets. When HT_BENCH_SMOKE is
// set, every scenario runs for at most this many cycles (the variable's
// value, or 20000 when it is set but not a number) — enough to exercise
// the full setup/run/assess path while keeping whole benches under a
// second for the `bench_smoke` CTest label.
Cycle BenchSmokeCap();

// --- Telemetry plumbing ------------------------------------------------------

// Process-wide telemetry options, set once (via ApplyRunnerFlags or
// directly) before any RunScenarios call. Empty paths = off.
struct RunnerTelemetryOptions {
  std::string trace_out;    // Chrome trace_event JSON for all scenarios.
  std::string metrics_out;  // hammertime.metrics.v1 run-report document.
  Cycle sample_every = 0;   // Sampler period; defaulted when metrics_out set.
  // Overrides McConfig::shard_min_window for every scenario when nonzero
  // (--shard-min-window in hammertime and the scenario benches).
  Cycle shard_min_window = 0;
};

RunnerTelemetryOptions& RunnerTelemetry();

// Default sampler period when `--metrics-out` is given without an
// explicit `--sample-every`: coarse enough to stay cheap on full-length
// scenarios, fine enough for ~50 points on the default 800k-cycle run.
inline constexpr Cycle kDefaultSampleEvery = 16384;

// Test hook: drop all accumulated buffers/reports (fresh TraceSink).
void ResetRunnerTelemetry();

// Per-scenario telemetry capture. RunScenarios fills the `in` fields (one
// TraceBuffer per scenario, created in spec order so the merged trace is
// deterministic under any worker count) and reads the `out` fields back
// on the calling thread.
struct ScenarioTelemetry {
  // in:
  std::string label;
  TraceBuffer* trace = nullptr;
  Cycle sample_every = 0;
  // out:
  JsonValue report;
  double wall_seconds = 0.0;
};

// Flattens the interesting ScenarioSpec knobs into a config object for
// the run report.
JsonValue ScenarioSpecToJson(const ScenarioSpec& spec);

JsonValue ScenarioResultToJson(const ScenarioResult& result);

// Optional observation points inside RunScenario, for callers that need
// access to the live System (e.g. tools/hammerfuzz attaching the
// differential oracle). `on_start` fires after full setup, immediately
// before RunFor; `on_finish` fires after all results are collected, while
// the System is still alive. Both are skipped when null.
struct ScenarioHooks {
  std::function<void(System&)> on_start;
  std::function<void(System&)> on_finish;
  // Cloud mode only: fires after the final harvest, while the tenant
  // population is still alive (isolation-invariant tests read the
  // classified flip samples here). Skipped on the classic path.
  std::function<void(const TenantManager&)> on_tenants;
};

// Builds the standard two-tenant (attacker + victim) scenario, runs it,
// and collects outcome metrics. Isolation-centric defenses are expressed
// through `spec.system` (scheme + alloc policy) by the caller.
//
// With `telemetry` set, the scenario runs with its trace buffer and
// sampler attached and fills telemetry->report with a
// hammertime.run_report.v1 document (plus per-scenario wall-clock).
ScenarioResult RunScenario(ScenarioSpec spec, ScenarioTelemetry* telemetry = nullptr,
                           const ScenarioHooks* hooks = nullptr);

// Rewrites the --trace-out / --metrics-out files from everything
// accumulated so far. Called after every RunScenarios batch.
void FlushRunnerTelemetry();

// Runs every spec on a worker pool and returns the results in spec order.
// Each scenario is a self-contained System (no shared mutable state), so
// results are bit-identical to a serial `for (spec : specs) RunScenario`
// loop regardless of the worker count or scheduling order.
//
// `threads` = 0 resolves via HT_THREADS, then hardware concurrency;
// callers typically pass the value ApplyRunnerFlags returned so
// `--threads N` wins.
std::vector<ScenarioResult> RunScenarios(const std::vector<ScenarioSpec>& specs,
                                         unsigned threads = 0);

// --- Shared flag plumbing ----------------------------------------------------

// Registers the runner's shared flags (--threads, --trace-out,
// --metrics-out, --sample-every) on `parser`, so every executable spells
// them identically.
void AddRunnerFlags(ArgParser& parser);

// Reads the shared flags back, installs the process-wide telemetry
// options (defaulting --sample-every when --metrics-out is set), and
// returns the requested worker count (0 = auto).
unsigned ApplyRunnerFlags(const ArgParser& parser);

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_RUNNER_RUNNER_H_
