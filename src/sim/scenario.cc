#include "sim/scenario.h"

#include "defense/anvil_defense.h"
#include "defense/frequency_defense.h"
#include "defense/refresh_defense.h"

namespace ht {
namespace {

// One registry row: the canonical name (what ToString emits and the
// sweep cache keys on) plus an optional accepted alias for FromString.
template <typename Kind>
struct KindEntry {
  Kind kind;
  const char* name;
  const char* alias = nullptr;
};

template <typename Kind, size_t N>
const char* NameOf(const KindEntry<Kind> (&table)[N], Kind kind) {
  for (const auto& entry : table) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

template <typename Kind, size_t N>
std::optional<Kind> KindFromString(const KindEntry<Kind> (&table)[N], std::string_view name) {
  for (const auto& entry : table) {
    if (name == entry.name || (entry.alias != nullptr && name == entry.alias)) {
      return entry.kind;
    }
  }
  return std::nullopt;
}

template <typename Kind, size_t N>
std::vector<Kind> AllOf(const KindEntry<Kind> (&table)[N]) {
  std::vector<Kind> kinds;
  kinds.reserve(N);
  for (const auto& entry : table) {
    kinds.push_back(entry.kind);
  }
  return kinds;
}

template <typename Kind, size_t N>
std::string JoinNames(const KindEntry<Kind> (&table)[N]) {
  std::string out;
  for (const auto& entry : table) {
    if (!out.empty()) {
      out += ", ";
    }
    out += entry.name;
  }
  return out;
}

constexpr KindEntry<DefenseKind> kDefenseKinds[] = {
    {DefenseKind::kNone, "none"},
    {DefenseKind::kSwRefresh, "sw-refresh"},
    {DefenseKind::kSwRefreshRefn, "sw-refresh+refn", "sw-refresh-refn"},
    {DefenseKind::kActRemap, "act-remap"},
    {DefenseKind::kCacheLock, "cache-lock"},
    {DefenseKind::kAnvil, "anvil"},
};

constexpr KindEntry<HwMitigationKind> kHwMitigationKinds[] = {
    {HwMitigationKind::kNone, "none"},
    {HwMitigationKind::kPara, "para"},
    {HwMitigationKind::kGraphene, "graphene"},
    {HwMitigationKind::kTwice, "twice"},
    {HwMitigationKind::kBlockHammer, "blockhammer"},
};

constexpr KindEntry<AttackKind> kAttackKinds[] = {
    {AttackKind::kNone, "benign", "none"},
    {AttackKind::kDoubleSided, "double-sided"},
    {AttackKind::kManySided, "many-sided"},
    {AttackKind::kDma, "dma"},
    {AttackKind::kAdaptive, "adaptive"},
    {AttackKind::kHalfDouble, "half-double"},
    {AttackKind::kPattern, "pattern"},
};

}  // namespace

const char* ToString(DefenseKind kind) { return NameOf(kDefenseKinds, kind); }

std::optional<DefenseKind> DefenseKindFromString(std::string_view name) {
  return KindFromString(kDefenseKinds, name);
}

const std::vector<DefenseKind>& AllDefenseKinds() {
  static const std::vector<DefenseKind> kinds = AllOf(kDefenseKinds);
  return kinds;
}

std::string KnownDefenseKinds() { return JoinNames(kDefenseKinds); }

const char* ToString(HwMitigationKind kind) { return NameOf(kHwMitigationKinds, kind); }

std::optional<HwMitigationKind> HwMitigationKindFromString(std::string_view name) {
  return KindFromString(kHwMitigationKinds, name);
}

const std::vector<HwMitigationKind>& AllHwMitigationKinds() {
  static const std::vector<HwMitigationKind> kinds = AllOf(kHwMitigationKinds);
  return kinds;
}

std::string KnownHwMitigationKinds() { return JoinNames(kHwMitigationKinds); }

const char* ToString(AttackKind kind) { return NameOf(kAttackKinds, kind); }

std::optional<AttackKind> AttackKindFromString(std::string_view name) {
  return KindFromString(kAttackKinds, name);
}

const std::vector<AttackKind>& AllAttackKinds() {
  static const std::vector<AttackKind> kinds = AllOf(kAttackKinds);
  return kinds;
}

std::string KnownAttackKinds() { return JoinNames(kAttackKinds); }

void ApplyDefensePreset(SystemConfig& config, DefenseKind kind, uint64_t act_threshold) {
  switch (kind) {
    case DefenseKind::kNone:
    case DefenseKind::kAnvil:
      // ANVIL is software-only: no MC primitive needed (that's its flaw).
      break;
    case DefenseKind::kSwRefresh:
    case DefenseKind::kActRemap:
    case DefenseKind::kCacheLock:
      config.mc.act_counter.enabled = true;
      config.mc.act_counter.precise = true;
      config.mc.act_counter.threshold = act_threshold;
      config.mc.act_counter.randomize_reset = true;
      break;
    case DefenseKind::kSwRefreshRefn:
      config.mc.act_counter.enabled = true;
      config.mc.act_counter.precise = true;
      config.mc.act_counter.threshold = act_threshold;
      config.mc.act_counter.randomize_reset = true;
      config.mc.use_ref_neighbors = true;
      break;
  }
}

std::unique_ptr<Defense> MakeDefense(DefenseKind kind, const DramConfig& dram) {
  switch (kind) {
    case DefenseKind::kNone:
      return std::make_unique<NoDefense>();
    case DefenseKind::kSwRefresh: {
      SoftRefreshConfig config;
      config.method = VictimRefreshMethod::kRefreshInstruction;
      config.blast_radius = dram.disturbance.blast_radius;
      return std::make_unique<SoftRefreshDefense>(config);
    }
    case DefenseKind::kSwRefreshRefn: {
      SoftRefreshConfig config;
      config.method = VictimRefreshMethod::kRefNeighbors;
      config.blast_radius = dram.disturbance.blast_radius;
      return std::make_unique<SoftRefreshDefense>(config);
    }
    case DefenseKind::kActRemap: {
      ActRemapConfig config;
      config.history_window = dram.retention.refresh_window;
      return std::make_unique<ActRemapDefense>(config);
    }
    case DefenseKind::kCacheLock: {
      CacheLockConfig config;
      config.lock_duration = dram.retention.refresh_window;
      return std::make_unique<CacheLockDefense>(config);
    }
    case DefenseKind::kAnvil: {
      AnvilConfig config;
      config.blast_radius = dram.disturbance.blast_radius;
      return std::make_unique<AnvilDefense>(config);
    }
  }
  return nullptr;
}

void InstallHwMitigation(System& system, HwMitigationKind kind) {
  const DramConfig& dram = system.config().dram;
  switch (kind) {
    case HwMitigationKind::kNone:
      return;
    case HwMitigationKind::kPara:
      system.mc().InstallMitigation(
          std::make_unique<ParaMitigation>(dram.org, ParaConfig{}));
      return;
    case HwMitigationKind::kGraphene:
      system.mc().InstallMitigation(
          std::make_unique<GrapheneMitigation>(dram.org, dram.disturbance, GrapheneConfig{}));
      return;
    case HwMitigationKind::kTwice:
      system.mc().InstallMitigation(std::make_unique<TwiceMitigation>(
          dram.org, dram.timing, dram.disturbance, TwiceConfig{}));
      return;
    case HwMitigationKind::kBlockHammer:
      system.mc().InstallMitigation(std::make_unique<BlockHammerMitigation>(
          dram.org, dram.retention, dram.disturbance, BlockHammerConfig{}));
      return;
  }
}

uint64_t PagesPerRowGroup(const AddressMapper& mapper) {
  const DramOrg& org = mapper.org();
  uint64_t lines_per_row_group;
  if (mapper.scheme() == InterleaveScheme::kBankSequential) {
    // A row's columns are contiguous; the next row follows immediately.
    lines_per_row_group = org.columns;
  } else {
    // Interleaved: one row index spans every channel/rank/bank.
    lines_per_row_group =
        static_cast<uint64_t>(org.channels) * org.ranks * org.banks * org.columns;
  }
  return std::max<uint64_t>(1, lines_per_row_group / kLinesPerPage);
}

std::vector<DomainId> SetupTenants(System& system, uint32_t count, uint64_t pages_each,
                                   uint64_t chunk_pages, bool fill) {
  if (chunk_pages == 0) {
    chunk_pages = PagesPerRowGroup(system.mc().mapper());
  }
  std::vector<DomainId> domains;
  domains.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    domains.push_back(system.AddDomain({.name = "tenant" + std::to_string(i)}));
  }
  // Interleave allocation turns so tenants' frames abut in physical
  // memory — the worst case isolation must handle.
  std::vector<uint64_t> allocated(count, 0);
  std::vector<VirtAddr> bases(count, 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t i = 0; i < count; ++i) {
      if (allocated[i] >= pages_each) {
        continue;
      }
      const uint64_t chunk = std::min(chunk_pages, pages_each - allocated[i]);
      auto base = system.kernel().AllocRegion(domains[i], chunk);
      if (base.has_value()) {
        if (allocated[i] == 0) {
          bases[i] = *base;
        }
        allocated[i] += chunk;
        progress = true;
      } else {
        allocated[i] = pages_each;  // Pool exhausted; stop trying.
      }
    }
  }
  if (fill) {
    for (uint32_t i = 0; i < count; ++i) {
      if (allocated[i] > 0) {
        system.kernel().FillRegion(domains[i], bases[i], allocated[i]);
      }
    }
  }
  return domains;
}

SecurityOutcome Assess(System& system) {
  system.DrainCaches();
  SecurityOutcome outcome;
  const VerifyResult verify = system.kernel().VerifyAll();
  outcome.corrupted_lines = verify.corrupted_lines;
  outcome.dos_lockups = verify.dos_lockups;
  const FlipAttribution attribution = system.kernel().AttributeFlips();
  outcome.flip_events = attribution.total_flips;
  outcome.cross_domain_flips = attribution.cross_domain;
  outcome.intra_domain_flips = attribution.intra_domain;
  return outcome;
}

PerfSummary Summarize(System& system, Cycle cycles) {
  PerfSummary summary;
  summary.ops = system.TotalOpsCompleted();
  summary.cycles = cycles;
  summary.ops_per_kcycle =
      cycles == 0 ? 0.0 : static_cast<double>(summary.ops) * 1000.0 / static_cast<double>(cycles);
  summary.row_hit_rate = system.RowHitRate();
  summary.avg_read_latency = system.AvgReadLatency();
  summary.p99_read_latency = system.P99ReadLatency();
  summary.extra_acts = system.mc().stats().Get("mc.refresh_instr_acts") +
                       system.mc().stats().Get("mc.mitigation_refreshes");
  return summary;
}

}  // namespace ht
