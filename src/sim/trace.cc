#include "sim/trace.h"

#include <sstream>

namespace ht {

ParsedTrace ParseTrace(std::istream& in) {
  ParsedTrace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "R" || kind == "F" || kind == "W") {
      std::string va_text;
      fields >> va_text;
      if (va_text.empty()) {
        ++trace.skipped_lines;
        continue;
      }
      VirtAddr va = 0;
      try {
        va = std::stoull(va_text, nullptr, 16);
      } catch (...) {
        ++trace.skipped_lines;
        continue;
      }
      if (kind == "R") {
        trace.ops.push_back(CoreOp::Load(va));
      } else if (kind == "F") {
        trace.ops.push_back(CoreOp::Flush(va));
      } else {
        std::string value_text;
        fields >> value_text;
        uint64_t value = 0;
        if (!value_text.empty()) {
          try {
            value = std::stoull(value_text, nullptr, 16);
          } catch (...) {
            ++trace.skipped_lines;
            continue;
          }
        }
        trace.ops.push_back(CoreOp::Store(va, value));
      }
    } else if (kind == "N") {
      trace.ops.push_back(CoreOp::Fence());
    } else if (kind == "I") {
      uint32_t cycles = 0;
      fields >> cycles;
      trace.ops.push_back(CoreOp::Idle(cycles));
    } else {
      ++trace.skipped_lines;
    }
  }
  return trace;
}

void WriteTrace(const std::vector<CoreOp>& ops, std::ostream& out) {
  for (const CoreOp& op : ops) {
    switch (op.kind) {
      case CoreOpKind::kLoad:
        out << "R " << std::hex << op.va << std::dec << "\n";
        break;
      case CoreOpKind::kStore:
        out << "W " << std::hex << op.va << " " << op.value << std::dec << "\n";
        break;
      case CoreOpKind::kFlush:
        out << "F " << std::hex << op.va << std::dec << "\n";
        break;
      case CoreOpKind::kFence:
        out << "N\n";
        break;
      case CoreOpKind::kIdle:
        out << "I " << op.idle_cycles << "\n";
        break;
      case CoreOpKind::kHalt:
      case CoreOpKind::kRefreshRow:
      case CoreOpKind::kLockLine:
      case CoreOpKind::kUnlockLine:
        break;  // Not representable in the trace format.
    }
  }
}

CoreOp TraceWorkload::Next() {
  if (ops_.empty()) {
    return CoreOp::Halt();
  }
  if (cursor_ >= ops_.size()) {
    cursor_ = 0;
    ++completed_passes_;
    if (repeats_ != 0 && completed_passes_ >= repeats_) {
      return CoreOp::Halt();
    }
  }
  return ops_[cursor_++];
}

}  // namespace ht
