// Experiment scaffolding shared by benches, examples, and integration
// tests: tenant setup with adjacent (checkerboarded) allocations, defense
// presets/factories, hardware-mitigation installation, and
// security/performance summaries.
#ifndef HAMMERTIME_SRC_SIM_SCENARIO_H_
#define HAMMERTIME_SRC_SIM_SCENARIO_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "defense/defense.h"
#include "sim/system.h"

namespace ht {

// --- Software defenses -------------------------------------------------------

enum class DefenseKind : uint8_t {
  kNone,
  kSwRefresh,       // §4.3 refresh instruction driven by §4.2 interrupts.
  kSwRefreshRefn,   // Same, but using the REF_NEIGHBORS DRAM assist.
  kActRemap,        // §4.2 wear-leveling page migration.
  kCacheLock,       // §4.2 cache-line locking with migration fallback.
  kAnvil,           // PMU-sampling software-only baseline [4].
};

// Canonical-name registries. Every kind enum has a ToString/FromString
// round-trip (FromString also accepts documented aliases), an All*()
// enumeration in declaration order, and a Known*() comma-joined name list
// for CLI usage/error text. The sweep grid and result cache key off the
// canonical names, so renaming one invalidates cached sweep cells.
const char* ToString(DefenseKind kind);
std::optional<DefenseKind> DefenseKindFromString(std::string_view name);
const std::vector<DefenseKind>& AllDefenseKinds();
std::string KnownDefenseKinds();

// Adjusts a SystemConfig so the chosen defense's hardware prerequisites
// (ACT counter, interrupt precision, REF_NEIGHBORS) are enabled.
void ApplyDefensePreset(SystemConfig& config, DefenseKind kind, uint64_t act_threshold = 512);

// Builds the defense object (installed via System::InstallDefense).
std::unique_ptr<Defense> MakeDefense(DefenseKind kind, const DramConfig& dram);

// --- Hardware (in-MC) mitigation baselines -----------------------------------

enum class HwMitigationKind : uint8_t {
  kNone,
  kPara,
  kGraphene,
  kTwice,
  kBlockHammer,
};

const char* ToString(HwMitigationKind kind);
std::optional<HwMitigationKind> HwMitigationKindFromString(std::string_view name);
const std::vector<HwMitigationKind>& AllHwMitigationKinds();
std::string KnownHwMitigationKinds();

void InstallHwMitigation(System& system, HwMitigationKind kind);

// --- Attack patterns ---------------------------------------------------------

enum class AttackKind : uint8_t {
  kNone,         // Benign only.
  kDoubleSided,  // Classic sandwich around a victim row.
  kManySided,    // TRRespass-style n aggressors.
  kDma,          // Double-sided pattern driven by a DMA engine.
  kAdaptive,     // Counter-synchronized evasion attacker (§4.2).
  kHalfDouble,   // Distance-2 aggressors (blast-radius attack).
  kPattern,      // Frequency-domain pattern from ScenarioSpec::pattern_seed
                 // (Blacksmith-style, src/attack/pattern.h).
};

const char* ToString(AttackKind kind);
std::optional<AttackKind> AttackKindFromString(std::string_view name);
const std::vector<AttackKind>& AllAttackKinds();
std::string KnownAttackKinds();

// --- Tenants -------------------------------------------------------------

// Pages spanned by one row index across the whole system under `mapper`'s
// scheme (the natural granularity at which row ownership is exclusive).
uint64_t PagesPerRowGroup(const AddressMapper& mapper);

// Creates `count` tenant domains and allocates `pages_each` pages per
// tenant in `chunk_pages`-page turns, so tenants' rows abut in physical
// memory (the realistic worst case for isolation). `chunk_pages == 0`
// uses one row-group per turn, which makes row ownership exclusive while
// keeping adjacent rows cross-tenant. Fills every region with the golden
// pattern when `fill` is set.
std::vector<DomainId> SetupTenants(System& system, uint32_t count, uint64_t pages_each,
                                   uint64_t chunk_pages = 0, bool fill = true);

// --- Outcome summaries ------------------------------------------------------

struct SecurityOutcome {
  uint64_t flip_events = 0;
  uint64_t cross_domain_flips = 0;
  uint64_t intra_domain_flips = 0;
  uint64_t corrupted_lines = 0;
  uint64_t dos_lockups = 0;
};

// Drains caches, verifies all golden regions, and attributes flips.
SecurityOutcome Assess(System& system);

struct PerfSummary {
  uint64_t ops = 0;
  Cycle cycles = 0;
  double ops_per_kcycle = 0.0;
  double row_hit_rate = 0.0;
  double avg_read_latency = 0.0;
  double p99_read_latency = 0.0;  // Tail latency (cloud SLO metric).
  uint64_t extra_acts = 0;  // ACTs from mitigation/defense refreshes.
};

PerfSummary Summarize(System& system, Cycle cycles);

}  // namespace ht

#endif  // HAMMERTIME_SRC_SIM_SCENARIO_H_
