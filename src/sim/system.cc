#include "sim/system.h"

#include <algorithm>

#include "common/log.h"

namespace ht {

const char* ToString(AllocPolicy policy) {
  switch (policy) {
    case AllocPolicy::kLinear:
      return "linear";
    case AllocPolicy::kBankAware:
      return "bank-aware";
    case AllocPolicy::kGuardRows:
      return "guard-rows";
    case AllocPolicy::kSubarrayAware:
      return "subarray-aware";
  }
  return "?";
}

System::System(const SystemConfig& config) : config_(config) {
  mc_ = std::make_unique<MemoryController>(config_.dram, config_.mc);
  allocator_ = MakeAllocator();
  kernel_ = std::make_unique<HostKernel>(mc_.get(), allocator_.get());
  llc_ = std::make_unique<Cache>(config_.cache);
  cores_.reserve(config_.cores);
  for (uint32_t i = 0; i < config_.cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, kInvalidDomain, config_.core, llc_.get(),
                                            mc_.get()));
  }

  // Route MC completions back to the issuing core; DMA reads are
  // fire-and-forget.
  mc_->set_response_handler([this](const MemResponse& response) {
    if (response.requestor < cores_.size()) {
      cores_[response.requestor]->OnResponse(response, now_);
    }
  });

  if (config_.telemetry.trace != nullptr) {
    mc_->set_trace(config_.telemetry.trace);
    kernel_->set_trace(config_.telemetry.trace, &now_);
  }
  sampler_ = StatSampler(config_.telemetry.sample_every);
  if (sampler_.enabled()) {
    sampler_.AddSource("", &mc_->stats());
    for (uint32_t c = 0; c < mc_->channels(); ++c) {
      // Per-channel device stats share metric names; prefix by channel.
      sampler_.AddSource("ch" + std::to_string(c), &mc_->device(c).stats());
    }
    sampler_.AddSource("", &kernel_->stats());
    sampler_.AddSource("llc", &llc_->stats());
    sample_next_ = sampler_.NextSampleCycle();
  }
}

std::unique_ptr<FrameAllocator> System::MakeAllocator() const {
  const AddressMapper& mapper = mc_->mapper();
  switch (config_.alloc) {
    case AllocPolicy::kLinear:
      return std::make_unique<LinearAllocator>(mapper.total_lines() / kLinesPerPage);
    case AllocPolicy::kBankAware:
      return std::make_unique<BankAwareAllocator>(mapper);
    case AllocPolicy::kGuardRows:
      return std::make_unique<GuardRowAllocator>(mapper, config_.guard_domains,
                                                 config_.guard_blast);
    case AllocPolicy::kSubarrayAware:
      return std::make_unique<SubarrayAwareAllocator>(mapper);
  }
  return nullptr;
}

void System::AssignCore(uint32_t index, DomainId domain, std::unique_ptr<InstructionStream> stream,
                        bool is_host) {
  // Rebuild the core with the right domain/privilege; streams and
  // translation hook in afterwards.
  CoreConfig core_config = config_.core;
  core_config.is_host = is_host;
  cores_[index] = std::make_unique<Core>(index, domain, core_config, llc_.get(), mc_.get());
  cores_[index]->set_translate(kernel_->TranslatorFor(domain));
  cores_[index]->set_miss_observer([this](const MissEvent& event) {
    if (defense_ != nullptr) {
      defense_->OnMiss(event, now_);
    }
  });
  cores_[index]->set_stream(std::move(stream));
}

void System::AssignMuxCore(uint32_t index, DomainId carrier_domain,
                           std::unique_ptr<InstructionStream> stream) {
  AssignCore(index, carrier_domain, std::move(stream));
  cores_[index]->set_translate(kernel_->MuxTranslator());
  cores_[index]->set_domain_resolver(
      [](VirtAddr va) { return HostKernel::DomainOfVa(va); });
}

DmaEngine& System::AddDma(DomainId domain, const DmaConfig& dma_config) {
  const RequestorId id = 1000 + static_cast<RequestorId>(dmas_.size());
  dmas_.push_back(std::make_unique<DmaEngine>(id, domain, dma_config, mc_.get()));
  return *dmas_.back();
}

void System::InstallDefense(std::unique_ptr<Defense> defense) {
  defense_ = std::move(defense);
  if (defense_ != nullptr) {
    // Arm the ACT interrupt route only when something listens: an armed
    // handler pins the MC to the serial path (ShardHorizon), so systems
    // without a defense keep the full channel-sharding window.
    mc_->SetActInterruptHandler([this](const ActInterrupt& irq) {
      if (defense_ != nullptr) {
        defense_->OnActInterrupt(irq, now_);
      }
    });
    defense_->set_trace(config_.telemetry.trace);
    defense_->Attach(kernel_.get(), llc_.get());
    if (sampler_.enabled()) {
      sampler_.AddSource("", &defense_->stats());
    }
  }
}

Cycle System::NextWakeCycle(Cycle now) const {
  Cycle wake = mc_->NextWake(now);
  for (const auto& core : cores_) {
    wake = std::min(wake, core->NextWake(now));
  }
  for (const auto& dma : dmas_) {
    wake = std::min(wake, dma->NextWake(now));
  }
  if (defense_ != nullptr) {
    wake = std::min(wake, defense_->NextWake(now));
  }
  // Sample deadlines join the min so idle skipping lands the clock on
  // exact k*period boundaries — skip and tick runs yield identical series.
  wake = std::min(wake, sample_next_);
  return wake;
}

void System::Step(Cycle end) {
  if (now_ >= sample_next_) [[unlikely]] {
    // Stamped at the boundary cycle even if ticking overshot it (cannot
    // happen while NextWakeCycle includes sample_next_, but stay exact).
    mc_->SyncTelemetry();  // The sampler reads the MC StatSet directly.
    while (now_ >= sample_next_) {
      sampler_.Sample(sample_next_);
      sample_next_ += sampler_.period();
    }
  }
  if (config_.skip_idle && config_.mc.shard_channels && mc_->channels() > 1) {
    // Channel-sharding window: while every non-MC component is provably
    // idle (strictly before its NextWake) and no sample boundary is due,
    // the MC's channels decouple — advance them in parallel up to the
    // earliest external interaction, then fall back to lockstep ticking.
    // The adaptive horizon inside AdvanceChannels decides how much of the
    // stretch is actually worth windowing (>= shard_min_window per
    // window), so busy phases with stalled cores engage just as well as
    // idle/refresh tails; any offer it declines is ticked serially below.
    Cycle horizon = std::min(end, sample_next_);
    for (const auto& core : cores_) {
      horizon = std::min(horizon, core->NextWake(now_));
    }
    for (const auto& dma : dmas_) {
      horizon = std::min(horizon, dma->NextWake(now_));
    }
    if (defense_ != nullptr) {
      horizon = std::min(horizon, defense_->NextWake(now_));
    }
    if (horizon > now_) {
      const Cycle reached = mc_->AdvanceChannels(now_, horizon);
      if (reached > now_) {
        now_ = reached;
        return;
      }
    }
  }
  mc_->Tick(now_);
  for (auto& core : cores_) {
    core->Tick(now_);
  }
  for (auto& dma : dmas_) {
    dma->Tick(now_);
  }
  if (defense_ != nullptr) {
    defense_->Tick(now_);
  }
  ++now_;
  if (!config_.skip_idle || now_ >= end) {
    return;
  }
  // Every component's Tick is provably a no-op strictly before its
  // NextWake cycle, so jumping the clock there changes nothing — same
  // stats, same flips, fewer loop iterations.
  const Cycle wake = NextWakeCycle(now_);
  if (wake > now_) {
    now_ = std::min(wake, end);
  }
}

void System::RunFor(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    Step(end);
  }
}

void System::RunUntilQuiesced(Cycle max_cycles) {
  const Cycle end = now_ + max_cycles;
  while (now_ < end) {
    bool all_halted = true;
    for (auto& core : cores_) {
      if (!core->halted() || core->outstanding() != 0) {
        all_halted = false;
        break;
      }
    }
    if (all_halted && mc_->Idle()) {
      return;
    }
    Step(end);
  }
}

void System::DrainCaches() {
  llc_->WritebackAll([this](PhysAddr addr, uint64_t value) {
    const DdrCoord coord = mc_->mapper().Map(addr);
    mc_->device(coord.channel)
        .WriteLine(coord.rank, coord.bank, coord.row, coord.column, value);
  });
}

uint64_t System::TotalOpsCompleted() const {
  uint64_t total = 0;
  for (const auto& core : cores_) {
    total += core->ops_completed();
  }
  return total;
}

double System::RowHitRate() const {
  const uint64_t hits = mc_->stats().Get("mc.row_hits");
  const uint64_t misses =
      mc_->stats().Get("mc.row_misses") + mc_->stats().Get("mc.row_conflicts");
  return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

double System::AvgReadLatency() const {
  const Histogram* histogram = mc_->stats().GetHistogram("mc.read_latency");
  return histogram == nullptr ? 0.0 : histogram->Mean();
}

double System::P99ReadLatency() const {
  const Histogram* histogram = mc_->stats().GetHistogram("mc.read_latency");
  return histogram == nullptr ? 0.0 : static_cast<double>(histogram->Quantile(0.99));
}

StatSet System::CollectStats() const {
  // Fold lazily-accounted telemetry (open stall intervals, mitigation
  // table probes) into the component stat sets before merging. Both are
  // idempotent, so repeated collection stays exact.
  for (const auto& core : cores_) {
    core->SyncStallStats(now_);
  }
  mc_->SyncTelemetry();
  StatSet merged;
  merged.MergeFrom(mc_->stats());
  for (uint32_t c = 0; c < mc_->channels(); ++c) {
    merged.MergeFrom(mc_->device(c).stats());
    merged.MergeFrom(mc_->device(c).ecc_stats());
  }
  merged.MergeFrom(llc_->stats());
  for (const auto& core : cores_) {
    merged.MergeFrom(core->stats());
  }
  for (const auto& dma : dmas_) {
    merged.MergeFrom(dma->stats());
  }
  merged.MergeFrom(kernel_->stats());
  if (defense_ != nullptr) {
    merged.MergeFrom(defense_->stats());
  }
  return merged;
}

}  // namespace ht
