#include "dram/trr.h"

#include <algorithm>

namespace ht {

TrrEngine::TrrEngine(const DramOrg& org, const TrrParams& params, uint64_t seed)
    : org_(org), params_(params), rng_(seed) {
  tables_.resize(org_.banks);
}

void TrrEngine::OnActivate(uint32_t bank, uint32_t internal_row) {
  if (!params_.enabled) {
    return;
  }
  if (params_.sample_probability < 1.0 && !rng_.NextBool(params_.sample_probability)) {
    return;
  }
  auto& table = tables_[bank];
  for (Entry& entry : table) {
    if (entry.row == internal_row) {
      ++entry.count;
      return;
    }
  }
  if (table.size() < params_.table_entries) {
    table.push_back({internal_row, 1});
    return;
  }
  // Misra-Gries conflict: decrement everyone; replace any entry that hits
  // zero. With > n uniformly hammered rows this thrashes — the TRRespass
  // bypass.
  for (Entry& entry : table) {
    if (entry.count > 0) {
      --entry.count;
    }
  }
  for (Entry& entry : table) {
    if (entry.count == 0) {
      entry = {internal_row, 1};
      return;
    }
  }
}

std::vector<TrrRepair> TrrEngine::OnRefresh() {
  std::vector<TrrRepair> repairs;
  if (!params_.enabled) {
    return repairs;
  }
  // Scan banks round-robin so every bank gets service over successive REFs.
  for (uint32_t scanned = 0; scanned < org_.banks && repairs.size() < params_.refreshes_per_ref;
       ++scanned) {
    const uint32_t bank = (next_bank_rr_ + scanned) % org_.banks;
    auto& table = tables_[bank];
    while (!table.empty() && repairs.size() < params_.refreshes_per_ref) {
      auto top = std::max_element(
          table.begin(), table.end(),
          [](const Entry& a, const Entry& b) { return a.count < b.count; });
      if (top->count < params_.min_count_to_service) {
        break;  // Nothing the sampler is confident about (bypass regime).
      }
      repairs.push_back({bank, top->row});
      table.erase(top);
    }
  }
  next_bank_rr_ = (next_bank_rr_ + 1) % org_.banks;
  return repairs;
}

}  // namespace ht
