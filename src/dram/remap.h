// Vendor-internal logical-to-physical row remapping (§2.1: "DRAM
// occasionally remaps two logically-adjacent rows to different internal
// locations"). The memory controller and software address *logical* rows;
// disturbance physics happen on *internal* rows. Defenses that rely on
// adjacency must either obtain the map (optional DRAM assist, Table 1) or
// infer it (§2.1's attack-based inference, implemented in src/attack).
#ifndef HAMMERTIME_SRC_DRAM_REMAP_H_
#define HAMMERTIME_SRC_DRAM_REMAP_H_

#include <cstdint>
#include <vector>

#include "dram/config.h"

namespace ht {

class RowRemapTable {
 public:
  // Builds the per-bank permutation. With remapping disabled this is the
  // identity. With it enabled, `remap_fraction` of rows are pairwise
  // swapped with a partner row — within the same subarray by default, or
  // anywhere in the bank when `cross_subarray` is set (the adversarial
  // case for subarray isolation that §4.1 discusses).
  RowRemapTable(const DramOrg& org, const RemapParams& params);

  uint32_t ToInternal(uint32_t logical_row) const { return to_internal_[logical_row]; }
  uint32_t ToLogical(uint32_t internal_row) const { return to_logical_[internal_row]; }

  // Number of rows whose internal position differs from their logical one.
  uint32_t remapped_rows() const { return remapped_rows_; }

 private:
  std::vector<uint32_t> to_internal_;
  std::vector<uint32_t> to_logical_;
  uint32_t remapped_rows_ = 0;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_REMAP_H_
