#include "dram/device.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace ht {

DramDevice::DramDevice(const DramConfig& config, uint32_t channel_index)
    : config_(config),
      channel_index_(channel_index),
      timing_(config.org, config.timing, /*ref_neighbors_supported=*/true),
      data_(config.org.columns, config.flip_seed ^ (0x9e37ULL * (channel_index + 1))),
      flip_bits_rng_(config.flip_seed ^ (0xB17f11bULL * (channel_index + 1))) {
  const uint32_t banks = config_.org.banks;
  units_.reserve(config_.org.ranks * banks);
  for (uint32_t r = 0; r < config_.org.ranks; ++r) {
    for (uint32_t b = 0; b < banks; ++b) {
      units_.emplace_back(config_.org, config_.disturbance, config_.remap);
      units_.back().last_repair.assign(config_.org.rows_per_bank(), 0);
    }
    trr_.emplace_back(config_.org, config_.trr,
                      config_.flip_seed ^ (0x7122ULL * (r + 1) * (channel_index + 1)));
  }
  ref_sweep_row_.assign(config_.org.ranks, 0);
  ref_sweep_row_sb_.assign(static_cast<size_t>(config_.org.ranks) * banks, 0);

  c_acts_ = stats_.counter("dram.acts");
  c_pres_ = stats_.counter("dram.pres");
  c_preas_ = stats_.counter("dram.preas");
  c_reads_ = stats_.counter("dram.reads");
  c_writes_ = stats_.counter("dram.writes");
  c_refs_ = stats_.counter("dram.refs");
  c_refs_sb_ = stats_.counter("dram.refs_sb");
  c_ref_neighbors_ = stats_.counter("dram.ref_neighbors");
  c_trr_repairs_ = stats_.counter("dram.trr_repairs");
  c_flip_events_ = stats_.counter("dram.flip_events");
  c_flipped_bits_ = stats_.counter("dram.flipped_bits");
  c_ecc_corrected_ = ecc_stats_.counter("dram.ecc_corrected");
  c_ecc_detected_ = ecc_stats_.counter("dram.ecc_detected");
  c_ecc_escaped_ = ecc_stats_.counter("dram.ecc_escaped");

  Counter* table_probes = stats_.counter("act.table_probes");
  for (BankUnit& u : units_) {
    u.disturbance.set_probe_counter(table_probes);
  }
}

uint64_t DramDevice::RowKey(uint32_t rank, uint32_t bank, uint32_t logical_row) const {
  return (static_cast<uint64_t>(rank * config_.org.banks + bank) << 32) | logical_row;
}

TimingVerdict DramDevice::Issue(const DdrCommand& cmd, Cycle now) {
  const TimingVerdict verdict = timing_.Check(cmd, now);
  if (check_ != nullptr) {
    // The observer gets the remapped row for row-addressed commands so its
    // reference model works in internal coordinates without a remap copy.
    uint32_t internal_row = 0;
    if (cmd.type == DdrCommandType::kActivate ||
        cmd.type == DdrCommandType::kRefreshNeighbors) {
      internal_row = unit(cmd.rank, cmd.bank).remap_table.ToInternal(cmd.row);
    }
    check_->OnCommand(cmd, now, verdict, internal_row);
  }
  if (verdict != TimingVerdict::kOk) {
    stats_.Add("dram.illegal_commands");
    HT_LOG_DEBUG("rejected " << cmd.ToDebugString() << " at " << now << ": "
                             << ToString(verdict));
    return verdict;
  }
  timing_.Record(cmd, now);
  const uint8_t ch = static_cast<uint8_t>(channel_index_);
  const uint8_t rk = static_cast<uint8_t>(cmd.rank);
  const uint8_t bk = static_cast<uint8_t>(cmd.bank);
  switch (cmd.type) {
    case DdrCommandType::kActivate:
      c_acts_->Increment();
      HT_TRACE(trace_, now, TraceKind::kAct, ch, rk, bk, cmd.row, 0);
      ApplyActivate(cmd.rank, cmd.bank, cmd.row, now);
      break;
    case DdrCommandType::kPrecharge:
      c_pres_->Increment();
      HT_TRACE(trace_, now, TraceKind::kPre, ch, rk, bk, 0, 0);
      break;
    case DdrCommandType::kPrechargeAll:
      c_preas_->Increment();
      HT_TRACE(trace_, now, TraceKind::kPreAll, ch, rk, 0, 0, 0);
      break;
    case DdrCommandType::kRead:
      c_reads_->Increment();
      HT_TRACE(trace_, now, TraceKind::kRd, ch, rk, bk, cmd.row, 0);
      break;
    case DdrCommandType::kWrite:
      c_writes_->Increment();
      HT_TRACE(trace_, now, TraceKind::kWr, ch, rk, bk, cmd.row, 0);
      break;
    case DdrCommandType::kRefresh:
      c_refs_->Increment();
      HT_TRACE(trace_, now, TraceKind::kRef, ch, rk, 0, 0, 0);
      ApplyRefresh(cmd.rank, now);
      break;
    case DdrCommandType::kRefreshSb:
      c_refs_sb_->Increment();
      HT_TRACE(trace_, now, TraceKind::kRefSb, ch, rk, bk, 0, 0);
      ApplyRefreshSb(cmd.rank, cmd.bank, now);
      break;
    case DdrCommandType::kRefreshNeighbors:
      c_ref_neighbors_->Increment();
      HT_TRACE(trace_, now, TraceKind::kRefNeighbors, ch, rk, bk, cmd.row, cmd.blast);
      ApplyRefreshNeighbors(cmd.rank, cmd.bank, cmd.row, cmd.blast, now);
      break;
  }
  if (check_ != nullptr) {
    check_->OnCommandApplied(cmd, now);
  }
  return TimingVerdict::kOk;
}

void DramDevice::ApplyActivate(uint32_t rank, uint32_t bank, uint32_t logical_row, Cycle now) {
  BankUnit& u = unit(rank, bank);
  const uint32_t internal = u.remap_table.ToInternal(logical_row);
  u.last_repair[internal] = now;

  std::vector<DisturbanceVictim> victims;
  u.disturbance.OnActivate(internal, victims);
  if (!victims.empty()) {
    RecordFlips(rank, bank, victims, now);
  }
  trr_[rank].OnActivate(bank, internal);
}

void DramDevice::RepairInternalRow(uint32_t rank, uint32_t bank, uint32_t internal_row,
                                   Cycle now) {
  BankUnit& u = unit(rank, bank);
  u.disturbance.OnRefreshRow(internal_row);
  u.last_repair[internal_row] = now;
  if (check_ != nullptr) {
    check_->OnRepair(rank, bank, internal_row, now);
  }
}

void DramDevice::ApplyRefresh(uint32_t rank, Cycle now) {
  // Sweep the next group of internal rows in every bank of the rank.
  const uint32_t rows_per_ref = config_.RowsPerRef();
  const uint32_t rows_per_bank = config_.org.rows_per_bank();
  const uint32_t start = ref_sweep_row_[rank];
  for (uint32_t bank = 0; bank < config_.org.banks; ++bank) {
    for (uint32_t i = 0; i < rows_per_ref; ++i) {
      RepairInternalRow(rank, bank, (start + i) % rows_per_bank, now);
    }
  }
  ref_sweep_row_[rank] = (start + rows_per_ref) % rows_per_bank;

  // TRR piggybacks targeted neighbour refreshes on the REF (§3).
  for (const TrrRepair& repair : trr_[rank].OnRefresh()) {
    c_trr_repairs_->Increment();
    HT_TRACE(trace_, now, TraceKind::kTrrRepair, static_cast<uint8_t>(channel_index_),
             static_cast<uint8_t>(rank), static_cast<uint8_t>(repair.bank), repair.internal_row,
             0);
    const uint32_t internal = repair.internal_row;
    const uint32_t subarray = config_.org.SubarrayOfRow(internal);
    for (uint32_t d = 1; d <= config_.disturbance.blast_radius; ++d) {
      if (internal >= d && config_.org.SubarrayOfRow(internal - d) == subarray) {
        RepairInternalRow(rank, repair.bank, internal - d, now);
      }
      const uint32_t above = internal + d;
      if (above < config_.org.rows_per_bank() && config_.org.SubarrayOfRow(above) == subarray) {
        RepairInternalRow(rank, repair.bank, above, now);
      }
    }
  }
}

void DramDevice::ApplyRefreshSb(uint32_t rank, uint32_t bank, Cycle now) {
  const uint32_t rows_per_ref = config_.RowsPerRef();
  const uint32_t rows_per_bank = config_.org.rows_per_bank();
  uint32_t& sweep = ref_sweep_row_sb_[static_cast<size_t>(rank) * config_.org.banks + bank];
  for (uint32_t i = 0; i < rows_per_ref; ++i) {
    RepairInternalRow(rank, bank, (sweep + i) % rows_per_bank, now);
  }
  sweep = (sweep + rows_per_ref) % rows_per_bank;

  // TRR can piggyback on same-bank refreshes too.
  for (const TrrRepair& repair : trr_[rank].OnRefresh()) {
    c_trr_repairs_->Increment();
    HT_TRACE(trace_, now, TraceKind::kTrrRepair, static_cast<uint8_t>(channel_index_),
             static_cast<uint8_t>(rank), static_cast<uint8_t>(repair.bank), repair.internal_row,
             0);
    const uint32_t internal = repair.internal_row;
    const uint32_t subarray = config_.org.SubarrayOfRow(internal);
    for (uint32_t d = 1; d <= config_.disturbance.blast_radius; ++d) {
      if (internal >= d && config_.org.SubarrayOfRow(internal - d) == subarray) {
        RepairInternalRow(rank, repair.bank, internal - d, now);
      }
      const uint32_t above = internal + d;
      if (above < config_.org.rows_per_bank() && config_.org.SubarrayOfRow(above) == subarray) {
        RepairInternalRow(rank, repair.bank, above, now);
      }
    }
  }
}

void DramDevice::ApplyRefreshNeighbors(uint32_t rank, uint32_t bank, uint32_t logical_row,
                                       uint32_t blast, Cycle now) {
  // The device knows its own internal layout, so REF_NEIGHBORS refreshes
  // *internal* neighbours — robust to remapping, unlike MC-side guesses.
  BankUnit& u = unit(rank, bank);
  const uint32_t internal = u.remap_table.ToInternal(logical_row);
  const uint32_t subarray = config_.org.SubarrayOfRow(internal);
  for (uint32_t d = 1; d <= blast; ++d) {
    if (internal >= d && config_.org.SubarrayOfRow(internal - d) == subarray) {
      RepairInternalRow(rank, bank, internal - d, now);
    }
    const uint32_t above = internal + d;
    if (above < config_.org.rows_per_bank() && config_.org.SubarrayOfRow(above) == subarray) {
      RepairInternalRow(rank, bank, above, now);
    }
  }
}

void DramDevice::RecordFlips(uint32_t rank, uint32_t bank,
                             const std::vector<DisturbanceVictim>& victims, Cycle now) {
  BankUnit& u = unit(rank, bank);
  for (const DisturbanceVictim& victim : victims) {
    const uint32_t logical_victim = u.remap_table.ToLogical(victim.row);
    const uint32_t logical_aggressor = u.remap_table.ToLogical(victim.aggressor_row);
    const uint32_t bits = static_cast<uint32_t>(flip_bits_rng_.NextInRange(
        config_.disturbance.min_flip_bits, config_.disturbance.max_flip_bits));
    const uint32_t applied = data_.FlipRandomBits(RowKey(rank, bank, logical_victim), bits);

    if (check_ != nullptr) {
      check_->OnFlip(rank, bank, victim.row, victim.aggressor_row, now);
    }
    ++total_flip_events_;
    c_flip_events_->Increment();
    c_flipped_bits_->Add(applied);
    HT_TRACE(trace_, now, TraceKind::kBitFlip, static_cast<uint8_t>(channel_index_),
             static_cast<uint8_t>(rank), static_cast<uint8_t>(bank), logical_victim,
             static_cast<uint64_t>(logical_aggressor) | (static_cast<uint64_t>(applied) << 32));
    if (flips_.size() < kMaxFlipRecords) {
      flips_.push_back({now, channel_index_, rank, bank, logical_victim, logical_aggressor,
                        config_.org.SubarrayOfRow(victim.row), applied});
    }
  }
}

void DramDevice::WriteLine(uint32_t rank, uint32_t bank, uint32_t row, uint32_t column,
                           uint64_t value) {
  data_.WriteLine(RowKey(rank, bank, row), column, value);
}

uint64_t DramDevice::ReadLine(uint32_t rank, uint32_t bank, uint32_t row, uint32_t column) const {
  const uint64_t key = RowKey(rank, bank, row);
  const uint64_t raw = data_.ReadLine(key, column);
  if (!config_.ecc.enabled) {
    return raw;
  }
  const uint64_t mask = data_.CorruptionMask(key, column);
  if (mask == 0) {
    return raw;
  }
  switch (std::popcount(mask)) {
    case 1:
      c_ecc_corrected_->Increment();
      return raw ^ mask;  // SECDED corrects the single flipped bit.
    case 2:
      c_ecc_detected_->Increment();  // Machine check on real HW.
      return raw;
    default:
      c_ecc_escaped_->Increment();  // Silent multi-bit corruption.
      return raw;
  }
}

uint64_t DramDevice::CountRetentionViolations(Cycle now) const {
  if (now < config_.retention.refresh_window) {
    return 0;
  }
  const Cycle horizon = now - config_.retention.refresh_window;
  uint64_t violations = 0;
  for (const BankUnit& u : units_) {
    for (Cycle last : u.last_repair) {
      if (last < horizon) {
        ++violations;
      }
    }
  }
  return violations;
}

uint32_t DramDevice::InternalSubarrayOf(uint32_t rank, uint32_t bank,
                                        uint32_t logical_row) const {
  return config_.org.SubarrayOfRow(unit(rank, bank).remap_table.ToInternal(logical_row));
}

uint32_t DramDevice::InternalRowOf(uint32_t rank, uint32_t bank, uint32_t logical_row) const {
  return unit(rank, bank).remap_table.ToInternal(logical_row);
}

double DramDevice::DisturbanceLevel(uint32_t rank, uint32_t bank, uint32_t logical_row) const {
  const BankUnit& u = unit(rank, bank);
  return u.disturbance.Level(u.remap_table.ToInternal(logical_row));
}

}  // namespace ht
