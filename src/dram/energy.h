// First-order DRAM energy accounting from command counts.
//
// Per-command energies are DDR4-class ballpark constants (derived from
// IDD0/IDD4 style datasheet figures); they are deliberately simple — the
// experiments compare *relative* energy overheads of mitigations, where
// command mix is what matters. Background/static power is excluded.
#ifndef HAMMERTIME_SRC_DRAM_ENERGY_H_
#define HAMMERTIME_SRC_DRAM_ENERGY_H_

#include "common/stats.h"

namespace ht {

struct EnergyParams {
  // Nanojoules per command.
  double act_pre_nj = 2.0;          // One ACT + its eventual PRE.
  double read_nj = 1.2;             // RD burst (I/O + array).
  double write_nj = 1.3;            // WR burst.
  double ref_nj = 25.0;             // One REF command (sweeps a row group
                                    // in every bank).
  double ref_neighbors_row_nj = 2.0;  // Per victim row walked internally.
};

struct EnergyBreakdown {
  double activate_nj = 0.0;
  double read_nj = 0.0;
  double write_nj = 0.0;
  double refresh_nj = 0.0;
  double ref_neighbors_nj = 0.0;

  double total_nj() const {
    return activate_nj + read_nj + write_nj + refresh_nj + ref_neighbors_nj;
  }
};

// Computes the breakdown from a DramDevice's stats() counters.
inline EnergyBreakdown ComputeEnergy(const StatSet& device_stats,
                                     uint32_t blast_radius,
                                     const EnergyParams& params = EnergyParams()) {
  EnergyBreakdown breakdown;
  breakdown.activate_nj = static_cast<double>(device_stats.Get("dram.acts")) * params.act_pre_nj;
  breakdown.read_nj = static_cast<double>(device_stats.Get("dram.reads")) * params.read_nj;
  breakdown.write_nj = static_cast<double>(device_stats.Get("dram.writes")) * params.write_nj;
  breakdown.refresh_nj = static_cast<double>(device_stats.Get("dram.refs")) * params.ref_nj;
  breakdown.ref_neighbors_nj = static_cast<double>(device_stats.Get("dram.ref_neighbors")) *
                               2.0 * blast_radius * params.ref_neighbors_row_nj;
  return breakdown;
}

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_ENERGY_H_
