// Differential-checking hook points on the DRAM device command stream.
//
// src/check/ implements this interface with a naive reference model and
// attaches it via DramDevice::set_check_observer(). The interface lives in
// dram/ (not check/) so the device never depends on the library that
// verifies it. A detached observer costs one predictable branch per Issue
// — the same contract as tracing (see device.h set_trace).
#ifndef HAMMERTIME_SRC_DRAM_CHECK_HOOKS_H_
#define HAMMERTIME_SRC_DRAM_CHECK_HOOKS_H_

#include <cstdint>

#include "common/types.h"
#include "dram/command.h"
#include "dram/timing.h"

namespace ht {

class DeviceCheckObserver {
 public:
  virtual ~DeviceCheckObserver() = default;

  // Called for EVERY command handed to Issue() — rejected ones included —
  // before any device state changes. `verdict` is the device's decision;
  // `internal_row` is the remapped row for ACT / REF_NEIGHBORS (0 for
  // commands without a row operand).
  virtual void OnCommand(const DdrCommand& cmd, Cycle now, TimingVerdict verdict,
                         uint32_t internal_row) = 0;

  // Called for every internal-row repair performed while applying the
  // current command (REF sweep groups, TRR piggybacks, REF_NEIGHBORS
  // victims). Fires between OnCommand and OnCommandApplied.
  virtual void OnRepair(uint32_t rank, uint32_t bank, uint32_t internal_row, Cycle now) = 0;

  // Called for every disturbance victim that crossed the MAC while
  // applying the current ACT. Rows are *internal* coordinates.
  virtual void OnFlip(uint32_t rank, uint32_t bank, uint32_t internal_victim,
                      uint32_t internal_aggressor, Cycle now) = 0;

  // Called after an accepted command's state changes have fully applied.
  // Not called for rejected commands.
  virtual void OnCommandApplied(const DdrCommand& cmd, Cycle now) = 0;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_CHECK_HOOKS_H_
