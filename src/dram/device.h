// One DRAM channel: ranks of banks of subarrays of rows, with full DDR
// timing enforcement, retention bookkeeping, the disturbance model, the
// optional in-DRAM TRR, optional vendor row remapping, and the proposed
// REF_NEIGHBORS extension.
//
// The device validates every command (tests exercise illegal streams), so
// a buggy scheduler cannot silently corrupt simulation results.
#ifndef HAMMERTIME_SRC_DRAM_DEVICE_H_
#define HAMMERTIME_SRC_DRAM_DEVICE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/telemetry/trace.h"
#include "common/types.h"
#include "dram/check_hooks.h"
#include "dram/command.h"
#include "dram/config.h"
#include "dram/data_store.h"
#include "dram/disturbance.h"
#include "dram/remap.h"
#include "dram/timing.h"
#include "dram/trr.h"

namespace ht {

// One observed Rowhammer bit-flip episode (a victim row crossing the MAC).
struct FlipRecord {
  Cycle cycle = 0;
  uint32_t channel = 0;
  uint32_t rank = 0;
  uint32_t bank = 0;
  uint32_t victim_row = 0;      // Logical row index (what software sees).
  uint32_t aggressor_row = 0;   // Logical row index of the tipping aggressor.
  uint32_t subarray = 0;        // Internal subarray of the victim.
  uint32_t bits_flipped = 0;    // Bits corrupted in stored data (0 if row empty).
};

class DramDevice {
 public:
  DramDevice(const DramConfig& config, uint32_t channel_index);

  // --- Command interface (used by the memory controller) ------------------

  // Earliest cycle `cmd` satisfies all timing constraints.
  Cycle EarliestCycle(const DdrCommand& cmd) const { return timing_.EarliestCycle(cmd); }

  // Structural + timing legality at `now`.
  TimingVerdict Check(const DdrCommand& cmd, Cycle now) const { return timing_.Check(cmd, now); }

  // Executes `cmd` at `now`. Returns the verdict; state changes only on
  // kOk. ACT applies disturbance and may generate flips.
  TimingVerdict Issue(const DdrCommand& cmd, Cycle now);

  std::optional<uint32_t> OpenRow(uint32_t rank, uint32_t bank) const {
    return timing_.OpenRow(rank, bank);
  }

  // Bit per bank of `rank` with an open row; lets the refresh manager
  // answer "any bank open?" without scanning.
  uint64_t OpenBankMask(uint32_t rank) const { return timing_.OpenBankMask(rank); }

  // --- Data plane ----------------------------------------------------------

  // Reads/writes the representative word of a line. These model the data
  // carried by RD/WR bursts; the MC calls them when completing requests.
  // Rows/columns are *logical* coordinates. With ECC enabled, reads apply
  // SECDED to the word: 1 corrupted bit is corrected, 2 are detected
  // (returned raw, counted as dram.ecc_detected — a machine check on real
  // hardware), 3+ escape silently.
  void WriteLine(uint32_t rank, uint32_t bank, uint32_t row, uint32_t column, uint64_t value);
  uint64_t ReadLine(uint32_t rank, uint32_t bank, uint32_t row, uint32_t column) const;

  // --- Introspection (tests, defenses with modeled assists) ---------------

  const DramConfig& config() const { return config_; }
  uint32_t channel_index() const { return channel_index_; }

  // Flip records are capped at kMaxFlipRecords; total_flips() counts all.
  const std::vector<FlipRecord>& flip_records() const { return flips_; }
  uint64_t total_flip_events() const { return total_flip_events_; }

  // Rows whose last repair is older than the refresh window at `now`
  // (nonzero means the refresh manager is broken or disabled).
  uint64_t CountRetentionViolations(Cycle now) const;

  // Vendor assist (Table 1 "Internal subarray mappings"): internal subarray
  // of a logical row. Only meaningful to defenses when the experiment
  // grants the assist; attacks instead infer it (src/attack).
  uint32_t InternalSubarrayOf(uint32_t rank, uint32_t bank, uint32_t logical_row) const;
  uint32_t InternalRowOf(uint32_t rank, uint32_t bank, uint32_t logical_row) const;

  // Disturbance accumulated on a *logical* row (test-only oracle).
  double DisturbanceLevel(uint32_t rank, uint32_t bank, uint32_t logical_row) const;

  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }
  // ECC read-path counters (corrected / detected / escaped).
  const StatSet& ecc_stats() const { return ecc_stats_; }

  // Attach (or detach with nullptr) a trace buffer; the device emits one
  // event per issued command plus FLIP/TRR events.
  void set_trace(TraceBuffer* trace) { trace_ = trace; }

  // Attach (or detach with nullptr) a differential-check observer (see
  // dram/check_hooks.h). The observer sees every command — rejected ones
  // included — plus each repair and flip while the command applies.
  void set_check_observer(DeviceCheckObserver* check) { check_ = check; }

  static constexpr size_t kMaxFlipRecords = 200000;

 private:
  struct BankUnit {
    BankUnit(const DramOrg& org, const DisturbanceParams& params, const RemapParams& remap)
        : disturbance(org, params), remap_table(org, remap) {}
    BankDisturbance disturbance;
    RowRemapTable remap_table;
    std::vector<Cycle> last_repair;  // Per internal row.
  };

  BankUnit& unit(uint32_t rank, uint32_t bank) { return units_[rank * config_.org.banks + bank]; }
  const BankUnit& unit(uint32_t rank, uint32_t bank) const {
    return units_[rank * config_.org.banks + bank];
  }
  uint64_t RowKey(uint32_t rank, uint32_t bank, uint32_t logical_row) const;

  void ApplyActivate(uint32_t rank, uint32_t bank, uint32_t logical_row, Cycle now);
  void RepairInternalRow(uint32_t rank, uint32_t bank, uint32_t internal_row, Cycle now);
  void ApplyRefresh(uint32_t rank, Cycle now);
  void ApplyRefreshSb(uint32_t rank, uint32_t bank, Cycle now);
  void ApplyRefreshNeighbors(uint32_t rank, uint32_t bank, uint32_t logical_row, uint32_t blast,
                             Cycle now);
  void RecordFlips(uint32_t rank, uint32_t bank, const std::vector<DisturbanceVictim>& victims,
                   Cycle now);

  DramConfig config_;
  uint32_t channel_index_;
  TimingChecker timing_;
  std::vector<BankUnit> units_;  // ranks * banks.
  std::vector<TrrEngine> trr_;   // One per rank.
  std::vector<uint32_t> ref_sweep_row_;  // Per rank: next internal row group.
  std::vector<uint32_t> ref_sweep_row_sb_;  // Per rank*bank (REFsb mode).
  mutable StatSet ecc_stats_;  // Read-path counters (ReadLine is const).
  RowDataStore data_;
  Rng flip_bits_rng_;
  std::vector<FlipRecord> flips_;
  uint64_t total_flip_events_ = 0;
  StatSet stats_;
  TraceBuffer* trace_ = nullptr;
  DeviceCheckObserver* check_ = nullptr;

  // Interned stat handles (see common/stats.h for lifetime rules).
  Counter* c_acts_;
  Counter* c_pres_;
  Counter* c_preas_;
  Counter* c_reads_;
  Counter* c_writes_;
  Counter* c_refs_;
  Counter* c_refs_sb_;
  Counter* c_ref_neighbors_;
  Counter* c_trr_repairs_;
  Counter* c_flip_events_;
  Counter* c_flipped_bits_;
  Counter* c_ecc_corrected_;
  Counter* c_ecc_detected_;
  Counter* c_ecc_escaped_;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_DEVICE_H_
