#include "dram/config.h"

namespace ht {

DramConfig DramConfig::SimDefault() {
  DramConfig config;
  config.name = "ddr4-2400-sim";
  return config;
}

DramConfig DramConfig::DensityGeneration(int generation) {
  DramConfig config = SimDefault();
  // Kim et al. [30] measured first-flip thresholds falling from ~139K
  // (older DDR3) through ~10K (DDR4) to ~4.8K (LPDDR4-new); the paper
  // extrapolates the trend continuing. We map generations onto the scaled
  // MAC axis (real MAC / 55.6) and widen the blast radius for newer nodes.
  switch (generation) {
    case 0:  // DDR3-era, sparse density.
      config.name = "gen0-ddr3";
      config.disturbance.mac = 2500;
      config.disturbance.blast_radius = 1;
      break;
    case 1:  // Early DDR4.
      config.name = "gen1-ddr4-early";
      config.disturbance.mac = 900;
      config.disturbance.blast_radius = 1;
      break;
    case 2:  // Modern DDR4 / LPDDR4.
      config.name = "gen2-ddr4-new";
      config.disturbance.mac = 180;
      config.disturbance.blast_radius = 2;
      break;
    case 3:  // LPDDR4-new (~4.8K real MAC).
      config.name = "gen3-lpddr4-new";
      config.disturbance.mac = 86;
      config.disturbance.blast_radius = 2;
      break;
    case 4:  // Projected next-generation node.
      config.name = "gen4-projected";
      config.disturbance.mac = 32;
      config.disturbance.blast_radius = 4;
      break;
    default:  // Further extrapolation: halve MAC per step beyond gen 4.
      config.name = "gen" + std::to_string(generation) + "-extrapolated";
      config.disturbance.mac = 32u >> (generation - 4 < 5 ? generation - 4 : 5);
      if (config.disturbance.mac == 0) {
        config.disturbance.mac = 1;
      }
      config.disturbance.blast_radius = 4;
      break;
  }
  return config;
}

DramConfig DramConfig::Tiny() {
  DramConfig config;
  config.name = "tiny-test";
  config.org.channels = 1;
  config.org.ranks = 1;
  config.org.banks = 2;
  config.org.subarrays_per_bank = 2;
  config.org.rows_per_subarray = 16;
  config.org.columns = 8;
  config.retention.refresh_window = 1u << 16;
  config.retention.ref_commands_per_window = 32;
  config.disturbance.mac = 64;
  config.disturbance.blast_radius = 1;
  return config;
}

}  // namespace ht
