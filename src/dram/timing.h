// DDR timing enforcement for one channel (one command/data bus domain).
//
// The checker answers "when is this command first legal?" so the memory
// controller can schedule, and records issued commands to advance state.
// Structural legality (reading a closed bank, activating an open one) is
// reported separately from timing legality so tests can distinguish them.
#ifndef HAMMERTIME_SRC_DRAM_TIMING_H_
#define HAMMERTIME_SRC_DRAM_TIMING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "dram/command.h"
#include "dram/config.h"

namespace ht {

// Why a command cannot be issued right now.
enum class TimingVerdict : uint8_t {
  kOk,                 // Legal at the queried cycle.
  kTooEarly,           // Legal later; see EarliestCycle().
  kBankNotOpen,        // RD/WR/PRE-with-no-row structural issues.
  kBankAlreadyOpen,    // ACT to an open bank.
  kBanksNotIdle,       // REF requires every bank precharged.
  kUnsupported,        // REF_NEIGHBORS on a device without the extension.
};

const char* ToString(TimingVerdict verdict);

class TimingChecker {
 public:
  TimingChecker(const DramOrg& org, const DramTiming& timing, bool ref_neighbors_supported);

  // Earliest cycle at which `cmd` satisfies every timing constraint given
  // the commands recorded so far. Structural problems are reported via
  // `Check`; this only covers timing.
  Cycle EarliestCycle(const DdrCommand& cmd) const;

  // Full legality check at cycle `now`.
  TimingVerdict Check(const DdrCommand& cmd, Cycle now) const;

  // Records `cmd` as issued at `now`. Callers must Check() first; Record
  // on an illegal command leaves state undefined.
  void Record(const DdrCommand& cmd, Cycle now);

  // Row currently latched in `bank`'s row buffer, if any. Inline: the
  // FR-FCFS scan calls this per queue entry per cycle.
  std::optional<uint32_t> OpenRow(uint32_t rank, uint32_t bank_index) const {
    return ranks_[rank].banks[bank_index].open_row;
  }

  // Cycle at which the data for a RD issued at `issue` becomes available.
  Cycle ReadDataReady(Cycle issue) const { return issue + timing_.tCL + timing_.tBL; }

 private:
  struct BankState {
    std::optional<uint32_t> open_row;
    Cycle next_act = 0;     // Earliest ACT (tRC, tRP after PRE).
    Cycle next_pre = 0;     // Earliest PRE (tRAS, tRTP, tWR).
    Cycle next_rdwr = 0;    // Earliest RD/WR (tRCD).
    Cycle busy_until = 0;   // REF_NEIGHBORS internal occupation.
  };
  struct RankState {
    std::vector<BankState> banks;
    Cycle next_act_rrd = 0;       // tRRD across banks.
    Cycle faw_acts[4] = {0, 0, 0, 0};  // Ring of last four ACT cycles (tFAW).
    int faw_head = 0;
    Cycle next_rd = 0;            // tCCD / tWTR.
    Cycle next_wr = 0;            // tCCD.
    Cycle ref_busy_until = 0;     // tRFC after REF.
  };

  const BankState& bank(uint32_t rank, uint32_t bank_index) const {
    return ranks_[rank].banks[bank_index];
  }

  DramOrg org_;
  DramTiming timing_;
  bool ref_neighbors_supported_;
  std::vector<RankState> ranks_;
  Cycle data_bus_free_ = 0;  // Channel data bus: end of last burst.
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_TIMING_H_
