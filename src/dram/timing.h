// DDR timing enforcement for one channel (one command/data bus domain).
//
// The checker answers "when is this command first legal?" so the memory
// controller can schedule, and records issued commands to advance state.
// Structural legality (reading a closed bank, activating an open one) is
// reported separately from timing legality so tests can distinguish them.
//
// Implementation: all per-(command, command) separations from DramTiming
// are resolved once at construction into a ConstraintTable, and the
// per-bank state collapses to three earliest-issue deadlines (ACT, PRE,
// RD/WR) maintained incrementally as running maxima. The per-bank state
// lives in struct-of-arrays slabs — one flat vector per deadline class
// plus a flat open-row vector, indexed by packed (rank, bank) — so the
// FR-FCFS scan's two hottest probes (OpenRow per queue entry, one
// deadline class per candidate command) each walk a single dense array
// instead of hopping across per-bank structs. Rank-wide facts that used
// to require scanning every bank — "are all banks idle?" for REF, "which
// banks are open?" for PRE_ALL — are kept as an open-bank bitmask and a
// running max of the per-bank ACT deadlines, so EarliestCycle and Check
// are O(1) for every command type (PRE_ALL iterates only the open
// banks). Every deadline only ever increases (commands are recorded only
// after passing Check), which is what makes the incremental maxima exact;
// the differential oracle in src/check/ verifies this against a
// fold-from-history reference model.
#ifndef HAMMERTIME_SRC_DRAM_TIMING_H_
#define HAMMERTIME_SRC_DRAM_TIMING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "dram/command.h"
#include "dram/config.h"

namespace ht {

// Why a command cannot be issued right now.
enum class TimingVerdict : uint8_t {
  kOk,                 // Legal at the queried cycle.
  kTooEarly,           // Legal later; see EarliestCycle().
  kBankNotOpen,        // RD/WR/PRE-with-no-row structural issues.
  kBankAlreadyOpen,    // ACT to an open bank.
  kBanksNotIdle,       // REF requires every bank precharged.
  kUnsupported,        // REF_NEIGHBORS on a device without the extension.
};

const char* ToString(TimingVerdict verdict);

// Minimum separations between command pairs, resolved from DramTiming at
// construction so the hot path never re-derives them.
struct ConstraintTable {
  // ACT -> X, same bank.
  Cycle act_to_act = 0;    // tRC
  Cycle act_to_pre = 0;    // tRAS
  Cycle act_to_rdwr = 0;   // tRCD
  // ACT -> ACT, same rank.
  Cycle act_to_act_rank = 0;  // tRRD
  Cycle faw_window = 0;       // tFAW (rolling window of 4 ACTs).
  // PRE -> ACT, same bank.
  Cycle pre_to_act = 0;  // tRP
  // RD/WR -> X.
  Cycle rd_to_pre = 0;   // tRTP
  Cycle rd_to_rd = 0;    // tCCD
  Cycle rd_to_wr = 0;    // tCCD
  Cycle wr_to_wr = 0;    // tCCD
  Cycle wr_to_rd = 0;    // tCWL + tBL + tWTR
  Cycle wr_to_pre = 0;   // tCWL + tBL + tWR
  Cycle rda_to_act = 0;  // tRTP + tRP (auto-precharge)
  Cycle wra_to_act = 0;  // tCWL + tBL + tWR + tRP
  // Data bus occupancy.
  Cycle rd_burst = 0;  // tCL + tBL (issue -> bus free)
  Cycle wr_burst = 0;  // tCWL + tBL
  Cycle rd_lead = 0;   // tCL (issue -> burst start)
  Cycle wr_lead = 0;   // tCWL
  // Refresh.
  Cycle ref_to_any = 0;    // tRFC (whole rank)
  Cycle refsb_to_any = 0;  // tRFCsb (one bank)
  Cycle refn_per_row = 0;  // tRC per victim ACT+PRE pair
  Cycle refn_tail = 0;     // tRP
};

class TimingChecker {
 public:
  TimingChecker(const DramOrg& org, const DramTiming& timing, bool ref_neighbors_supported);

  // Earliest cycle at which `cmd` satisfies every timing constraint given
  // the commands recorded so far. Structural problems are reported via
  // `Check`; this only covers timing.
  Cycle EarliestCycle(const DdrCommand& cmd) const;

  // Full legality check at cycle `now`.
  TimingVerdict Check(const DdrCommand& cmd, Cycle now) const;

  // Records `cmd` as issued at `now`. Callers must Check() first; Record
  // on an illegal command leaves state undefined.
  void Record(const DdrCommand& cmd, Cycle now);

  // Row currently latched in `bank`'s row buffer, if any. Inline: the
  // FR-FCFS scan calls this per queue entry per cycle, so it compiles to
  // one load from the flat open-row slab plus a sentinel compare.
  std::optional<uint32_t> OpenRow(uint32_t rank, uint32_t bank_index) const {
    const uint32_t row = open_row_[Slot(rank, bank_index)];
    if (row == kNoOpenRow) {
      return std::nullopt;
    }
    return row;
  }

  // Bit `b` set iff bank `b` of `rank` has an open row. Lets the
  // controller answer "any bank open?" without a scan.
  uint64_t OpenBankMask(uint32_t rank) const { return ranks_[rank].open_mask; }

  // Cycle at which the data for a RD issued at `issue` becomes available.
  Cycle ReadDataReady(Cycle issue) const { return issue + table_.rd_burst; }

  const ConstraintTable& constraints() const { return table_; }

 private:
  // Sentinel in the open-row slab: no row latched. Row addresses are far
  // below 2^32 (rows_per_bank caps well under it), so the value is free.
  static constexpr uint32_t kNoOpenRow = 0xFFFFFFFFu;

  // Rank-wide running state; the per-bank deadline classes live in the
  // flat slabs below, indexed by Slot().
  struct RankMeta {
    uint64_t open_mask = 0;          // Bit per bank with an open row.
    Cycle any_ready = 0;             // tRFC blackout: gates every command.
    Cycle act_rank_ready = 0;        // tRRD across banks.
    Cycle rd_ready = 0;              // tCCD / tWTR.
    Cycle wr_ready = 0;              // tCCD.
    Cycle all_banks_act_ready = 0;   // Running max over banks of ready_act_
                                     // = earliest cycle the whole rank is quiet (REF).
    Cycle faw_acts[4] = {0, 0, 0, 0};  // Ring of last four ACT cycles (+1; tFAW).
    int faw_head = 0;
  };

  size_t Slot(uint32_t rank, uint32_t bank_index) const {
    return static_cast<size_t>(rank) * banks_ + bank_index;
  }

  // Raise a bank's ACT deadline, keeping the rank-wide running max exact.
  void RaiseAct(RankMeta& rank, size_t slot, Cycle cycle) {
    if (cycle > ready_act_[slot]) ready_act_[slot] = cycle;
    if (cycle > rank.all_banks_act_ready) rank.all_banks_act_ready = cycle;
  }
  static void Raise(Cycle& slot, Cycle cycle) {
    if (cycle > slot) slot = cycle;
  }

  ConstraintTable table_;
  bool ref_neighbors_supported_;
  uint32_t banks_ = 0;  // Banks per rank (slab stride).
  std::vector<RankMeta> ranks_;
  // Struct-of-arrays per-bank state, indexed by Slot(rank, bank). What
  // used to be a separate busy_until (REFsb / REF_NEIGHBORS bank
  // occupation) is folded into all three deadline classes at record time.
  std::vector<uint32_t> open_row_;   // kNoOpenRow = bank closed.
  std::vector<Cycle> ready_act_;    // Earliest legal ACT.
  std::vector<Cycle> ready_pre_;    // Earliest legal PRE.
  std::vector<Cycle> ready_rdwr_;   // Earliest legal RD/WR.
  Cycle data_bus_free_ = 0;  // Channel data bus: end of last burst.
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_TIMING_H_
