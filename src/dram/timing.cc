#include "dram/timing.h"

#include <algorithm>

namespace ht {

const char* ToString(TimingVerdict verdict) {
  switch (verdict) {
    case TimingVerdict::kOk:
      return "ok";
    case TimingVerdict::kTooEarly:
      return "too-early";
    case TimingVerdict::kBankNotOpen:
      return "bank-not-open";
    case TimingVerdict::kBankAlreadyOpen:
      return "bank-already-open";
    case TimingVerdict::kBanksNotIdle:
      return "banks-not-idle";
    case TimingVerdict::kUnsupported:
      return "unsupported";
  }
  return "?";
}

namespace {

ConstraintTable DeriveConstraints(const DramTiming& t) {
  ConstraintTable table;
  table.act_to_act = t.tRC;
  table.act_to_pre = t.tRAS;
  table.act_to_rdwr = t.tRCD;
  table.act_to_act_rank = t.tRRD;
  table.faw_window = t.tFAW;
  table.pre_to_act = t.tRP;
  table.rd_to_pre = t.ReadToPrecharge();
  table.rd_to_rd = t.tCCD;
  table.rd_to_wr = t.tCCD;
  table.wr_to_wr = t.tCCD;
  table.wr_to_rd = t.WriteToRead();
  table.wr_to_pre = t.WriteToPrecharge();
  table.rda_to_act = Cycle{t.ReadToPrecharge()} + t.tRP;
  table.wra_to_act = Cycle{t.WriteToPrecharge()} + t.tRP;
  table.rd_burst = Cycle{t.tCL} + t.tBL;
  table.wr_burst = Cycle{t.tCWL} + t.tBL;
  table.rd_lead = t.tCL;
  table.wr_lead = t.tCWL;
  table.ref_to_any = t.tRFC;
  table.refsb_to_any = t.tRFCsb;
  table.refn_per_row = t.tRC;
  table.refn_tail = t.tRP;
  return table;
}

}  // namespace

TimingChecker::TimingChecker(const DramOrg& org, const DramTiming& timing,
                             bool ref_neighbors_supported)
    : table_(DeriveConstraints(timing)),
      ref_neighbors_supported_(ref_neighbors_supported),
      banks_(org.banks) {
  // The open-bank bitmask caps banks-per-rank at 64, matching the
  // controller's refresh-slot bitmask (ranks * banks <= 64).
  ranks_.resize(org.ranks);
  const size_t slots = static_cast<size_t>(org.ranks) * org.banks;
  open_row_.assign(slots, kNoOpenRow);
  ready_act_.assign(slots, 0);
  ready_pre_.assign(slots, 0);
  ready_rdwr_.assign(slots, 0);
}

Cycle TimingChecker::EarliestCycle(const DdrCommand& cmd) const {
  const RankMeta& rank = ranks_[cmd.rank];
  Cycle earliest = rank.any_ready;
  switch (cmd.type) {
    case DdrCommandType::kActivate: {
      earliest = std::max({earliest, ready_act_[Slot(cmd.rank, cmd.bank)], rank.act_rank_ready});
      // tFAW: the 4th-most-recent ACT must be at least tFAW old. Entries
      // store cycle+1 so a legitimate ACT at cycle 0 is distinguishable
      // from "no ACT recorded yet".
      const Cycle oldest = rank.faw_acts[rank.faw_head];
      earliest = std::max(earliest, oldest == 0 ? Cycle{0} : (oldest - 1) + table_.faw_window);
      break;
    }
    case DdrCommandType::kPrecharge: {
      earliest = std::max(earliest, ready_pre_[Slot(cmd.rank, cmd.bank)]);
      break;
    }
    case DdrCommandType::kPrechargeAll: {
      for (uint64_t mask = rank.open_mask; mask != 0; mask &= mask - 1) {
        const uint32_t b = static_cast<uint32_t>(__builtin_ctzll(mask));
        earliest = std::max(earliest, ready_pre_[Slot(cmd.rank, b)]);
      }
      break;
    }
    case DdrCommandType::kRead: {
      earliest = std::max({earliest, ready_rdwr_[Slot(cmd.rank, cmd.bank)], rank.rd_ready});
      // Data bus availability: burst starts tCL after issue.
      if (data_bus_free_ > earliest + table_.rd_lead) {
        earliest = data_bus_free_ - table_.rd_lead;
      }
      break;
    }
    case DdrCommandType::kWrite: {
      earliest = std::max({earliest, ready_rdwr_[Slot(cmd.rank, cmd.bank)], rank.wr_ready});
      if (data_bus_free_ > earliest + table_.wr_lead) {
        earliest = data_bus_free_ - table_.wr_lead;
      }
      break;
    }
    case DdrCommandType::kRefresh: {
      // All banks must be quiet; the running max over every bank's ACT
      // deadline is exactly "the last bank finishes its tRP/tRC/occupancy".
      earliest = std::max(earliest, rank.all_banks_act_ready);
      break;
    }
    case DdrCommandType::kRefreshSb: {
      earliest = std::max(earliest, ready_act_[Slot(cmd.rank, cmd.bank)]);
      break;
    }
    case DdrCommandType::kRefreshNeighbors: {
      earliest = std::max(earliest, ready_act_[Slot(cmd.rank, cmd.bank)]);
      break;
    }
  }
  return earliest;
}

TimingVerdict TimingChecker::Check(const DdrCommand& cmd, Cycle now) const {
  const RankMeta& rank = ranks_[cmd.rank];
  switch (cmd.type) {
    case DdrCommandType::kActivate:
      if (rank.open_mask & (1ull << cmd.bank)) {
        return TimingVerdict::kBankAlreadyOpen;
      }
      break;
    case DdrCommandType::kPrecharge:
      // PRE to an idle bank is a harmless NOP per DDR; we allow it.
      break;
    case DdrCommandType::kRead:
    case DdrCommandType::kWrite:
      if (!(rank.open_mask & (1ull << cmd.bank))) {
        return TimingVerdict::kBankNotOpen;
      }
      break;
    case DdrCommandType::kRefresh:
      if (rank.open_mask != 0) {
        return TimingVerdict::kBanksNotIdle;
      }
      break;
    case DdrCommandType::kRefreshSb:
      if (rank.open_mask & (1ull << cmd.bank)) {
        return TimingVerdict::kBanksNotIdle;
      }
      break;
    case DdrCommandType::kRefreshNeighbors:
      if (!ref_neighbors_supported_) {
        return TimingVerdict::kUnsupported;
      }
      if (rank.open_mask & (1ull << cmd.bank)) {
        return TimingVerdict::kBankAlreadyOpen;
      }
      break;
    case DdrCommandType::kPrechargeAll:
      break;
  }
  if (now < EarliestCycle(cmd)) {
    return TimingVerdict::kTooEarly;
  }
  return TimingVerdict::kOk;
}

void TimingChecker::Record(const DdrCommand& cmd, Cycle now) {
  RankMeta& rank = ranks_[cmd.rank];
  switch (cmd.type) {
    case DdrCommandType::kActivate: {
      const size_t slot = Slot(cmd.rank, cmd.bank);
      open_row_[slot] = cmd.row;
      rank.open_mask |= 1ull << cmd.bank;
      RaiseAct(rank, slot, now + table_.act_to_act);
      Raise(ready_pre_[slot], now + table_.act_to_pre);
      Raise(ready_rdwr_[slot], now + table_.act_to_rdwr);
      Raise(rank.act_rank_ready, now + table_.act_to_act_rank);
      rank.faw_acts[rank.faw_head] = now + 1;
      rank.faw_head = (rank.faw_head + 1) % 4;
      break;
    }
    case DdrCommandType::kPrecharge: {
      const size_t slot = Slot(cmd.rank, cmd.bank);
      open_row_[slot] = kNoOpenRow;
      rank.open_mask &= ~(1ull << cmd.bank);
      RaiseAct(rank, slot, now + table_.pre_to_act);
      break;
    }
    case DdrCommandType::kPrechargeAll: {
      for (uint64_t mask = rank.open_mask; mask != 0; mask &= mask - 1) {
        const size_t slot = Slot(cmd.rank, static_cast<uint32_t>(__builtin_ctzll(mask)));
        open_row_[slot] = kNoOpenRow;
        RaiseAct(rank, slot, now + table_.pre_to_act);
      }
      rank.open_mask = 0;
      break;
    }
    case DdrCommandType::kRead: {
      const size_t slot = Slot(cmd.rank, cmd.bank);
      Raise(ready_pre_[slot], now + table_.rd_to_pre);
      Raise(rank.rd_ready, now + table_.rd_to_rd);
      Raise(rank.wr_ready, now + table_.rd_to_wr);
      Raise(data_bus_free_, now + table_.rd_burst);
      if (cmd.ap) {
        // RDA: the bank precharges itself tRTP after the read.
        open_row_[slot] = kNoOpenRow;
        rank.open_mask &= ~(1ull << cmd.bank);
        RaiseAct(rank, slot, now + table_.rda_to_act);
      }
      break;
    }
    case DdrCommandType::kWrite: {
      const size_t slot = Slot(cmd.rank, cmd.bank);
      Raise(ready_pre_[slot], now + table_.wr_to_pre);
      Raise(rank.wr_ready, now + table_.wr_to_wr);
      Raise(rank.rd_ready, now + table_.wr_to_rd);
      Raise(data_bus_free_, now + table_.wr_burst);
      if (cmd.ap) {
        // WRA: precharge after write recovery.
        open_row_[slot] = kNoOpenRow;
        rank.open_mask &= ~(1ull << cmd.bank);
        RaiseAct(rank, slot, now + table_.wra_to_act);
      }
      break;
    }
    case DdrCommandType::kRefresh: {
      Raise(rank.any_ready, now + table_.ref_to_any);
      break;
    }
    case DdrCommandType::kRefreshSb: {
      // The bank is occupied for tRFCsb: fold into every deadline class.
      const size_t slot = Slot(cmd.rank, cmd.bank);
      const Cycle done = now + table_.refsb_to_any;
      RaiseAct(rank, slot, done);
      Raise(ready_pre_[slot], done);
      Raise(ready_rdwr_[slot], done);
      break;
    }
    case DdrCommandType::kRefreshNeighbors: {
      // Internally the device walks up to 2*blast victim rows, performing
      // an ACT+PRE pair for each; the bank is occupied for that long.
      const size_t slot = Slot(cmd.rank, cmd.bank);
      const Cycle done =
          now + static_cast<Cycle>(2 * cmd.blast) * table_.refn_per_row + table_.refn_tail;
      RaiseAct(rank, slot, done);
      Raise(ready_pre_[slot], done);
      Raise(ready_rdwr_[slot], done);
      break;
    }
  }
}

}  // namespace ht
