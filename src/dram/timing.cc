#include "dram/timing.h"

#include <algorithm>

namespace ht {

const char* ToString(TimingVerdict verdict) {
  switch (verdict) {
    case TimingVerdict::kOk:
      return "ok";
    case TimingVerdict::kTooEarly:
      return "too-early";
    case TimingVerdict::kBankNotOpen:
      return "bank-not-open";
    case TimingVerdict::kBankAlreadyOpen:
      return "bank-already-open";
    case TimingVerdict::kBanksNotIdle:
      return "banks-not-idle";
    case TimingVerdict::kUnsupported:
      return "unsupported";
  }
  return "?";
}

TimingChecker::TimingChecker(const DramOrg& org, const DramTiming& timing,
                             bool ref_neighbors_supported)
    : org_(org), timing_(timing), ref_neighbors_supported_(ref_neighbors_supported) {
  ranks_.resize(org_.ranks);
  for (auto& rank : ranks_) {
    rank.banks.resize(org_.banks);
  }
}

Cycle TimingChecker::EarliestCycle(const DdrCommand& cmd) const {
  const RankState& rank = ranks_[cmd.rank];
  Cycle earliest = rank.ref_busy_until;
  switch (cmd.type) {
    case DdrCommandType::kActivate: {
      const BankState& b = rank.banks[cmd.bank];
      earliest = std::max({earliest, b.next_act, b.busy_until, rank.next_act_rrd});
      // tFAW: the 4th-most-recent ACT must be at least tFAW old. Entries
      // store cycle+1 so a legitimate ACT at cycle 0 is distinguishable
      // from "no ACT recorded yet".
      const Cycle oldest = rank.faw_acts[rank.faw_head];
      earliest = std::max(earliest, oldest == 0 ? Cycle{0} : (oldest - 1) + timing_.tFAW);
      break;
    }
    case DdrCommandType::kPrecharge: {
      const BankState& b = rank.banks[cmd.bank];
      earliest = std::max({earliest, b.next_pre, b.busy_until});
      break;
    }
    case DdrCommandType::kPrechargeAll: {
      for (const BankState& b : rank.banks) {
        if (b.open_row.has_value()) {
          earliest = std::max({earliest, b.next_pre, b.busy_until});
        }
      }
      break;
    }
    case DdrCommandType::kRead: {
      const BankState& b = rank.banks[cmd.bank];
      earliest = std::max({earliest, b.next_rdwr, b.busy_until, rank.next_rd});
      // Data bus availability: burst starts tCL after issue.
      if (data_bus_free_ > earliest + timing_.tCL) {
        earliest = data_bus_free_ - timing_.tCL;
      }
      break;
    }
    case DdrCommandType::kWrite: {
      const BankState& b = rank.banks[cmd.bank];
      earliest = std::max({earliest, b.next_rdwr, b.busy_until, rank.next_wr});
      if (data_bus_free_ > earliest + timing_.tCWL) {
        earliest = data_bus_free_ - timing_.tCWL;
      }
      break;
    }
    case DdrCommandType::kRefresh: {
      // All banks must be idle; REF may issue once each bank's precharge
      // has completed (next_act tracks tRP completion after a PRE).
      for (const BankState& b : rank.banks) {
        earliest = std::max({earliest, b.next_act, b.busy_until});
      }
      break;
    }
    case DdrCommandType::kRefreshSb: {
      const BankState& b = rank.banks[cmd.bank];
      earliest = std::max({earliest, b.next_act, b.busy_until});
      break;
    }
    case DdrCommandType::kRefreshNeighbors: {
      const BankState& b = rank.banks[cmd.bank];
      earliest = std::max({earliest, b.next_act, b.busy_until});
      break;
    }
  }
  return earliest;
}

TimingVerdict TimingChecker::Check(const DdrCommand& cmd, Cycle now) const {
  const RankState& rank = ranks_[cmd.rank];
  switch (cmd.type) {
    case DdrCommandType::kActivate:
      if (rank.banks[cmd.bank].open_row.has_value()) {
        return TimingVerdict::kBankAlreadyOpen;
      }
      break;
    case DdrCommandType::kPrecharge:
      // PRE to an idle bank is a harmless NOP per DDR; we allow it.
      break;
    case DdrCommandType::kRead:
    case DdrCommandType::kWrite:
      if (!rank.banks[cmd.bank].open_row.has_value()) {
        return TimingVerdict::kBankNotOpen;
      }
      break;
    case DdrCommandType::kRefresh:
      for (const BankState& b : rank.banks) {
        if (b.open_row.has_value()) {
          return TimingVerdict::kBanksNotIdle;
        }
      }
      break;
    case DdrCommandType::kRefreshSb:
      if (rank.banks[cmd.bank].open_row.has_value()) {
        return TimingVerdict::kBanksNotIdle;
      }
      break;
    case DdrCommandType::kRefreshNeighbors:
      if (!ref_neighbors_supported_) {
        return TimingVerdict::kUnsupported;
      }
      if (rank.banks[cmd.bank].open_row.has_value()) {
        return TimingVerdict::kBankAlreadyOpen;
      }
      break;
    case DdrCommandType::kPrechargeAll:
      break;
  }
  if (now < EarliestCycle(cmd)) {
    return TimingVerdict::kTooEarly;
  }
  return TimingVerdict::kOk;
}

void TimingChecker::Record(const DdrCommand& cmd, Cycle now) {
  RankState& rank = ranks_[cmd.rank];
  switch (cmd.type) {
    case DdrCommandType::kActivate: {
      BankState& b = rank.banks[cmd.bank];
      b.open_row = cmd.row;
      b.next_act = now + timing_.tRC;
      b.next_pre = now + timing_.tRAS;
      b.next_rdwr = now + timing_.tRCD;
      rank.next_act_rrd = now + timing_.tRRD;
      rank.faw_acts[rank.faw_head] = now + 1;
      rank.faw_head = (rank.faw_head + 1) % 4;
      break;
    }
    case DdrCommandType::kPrecharge: {
      BankState& b = rank.banks[cmd.bank];
      b.open_row.reset();
      b.next_act = std::max(b.next_act, now + timing_.tRP);
      break;
    }
    case DdrCommandType::kPrechargeAll: {
      for (BankState& b : rank.banks) {
        if (b.open_row.has_value()) {
          b.open_row.reset();
          b.next_act = std::max(b.next_act, now + timing_.tRP);
        }
      }
      break;
    }
    case DdrCommandType::kRead: {
      BankState& b = rank.banks[cmd.bank];
      b.next_pre = std::max(b.next_pre, now + timing_.ReadToPrecharge());
      rank.next_rd = now + timing_.tCCD;
      rank.next_wr = std::max(rank.next_wr, now + timing_.tCCD);
      data_bus_free_ = now + timing_.tCL + timing_.tBL;
      if (cmd.ap) {
        // RDA: the bank precharges itself tRTP after the read.
        b.open_row.reset();
        b.next_act = std::max(b.next_act, now + timing_.ReadToPrecharge() + timing_.tRP);
      }
      break;
    }
    case DdrCommandType::kWrite: {
      BankState& b = rank.banks[cmd.bank];
      b.next_pre = std::max(b.next_pre, now + timing_.WriteToPrecharge());
      rank.next_wr = now + timing_.tCCD;
      rank.next_rd = std::max(rank.next_rd, now + timing_.WriteToRead());
      data_bus_free_ = now + timing_.tCWL + timing_.tBL;
      if (cmd.ap) {
        // WRA: precharge after write recovery.
        b.open_row.reset();
        b.next_act = std::max(b.next_act, now + timing_.WriteToPrecharge() + timing_.tRP);
      }
      break;
    }
    case DdrCommandType::kRefresh: {
      rank.ref_busy_until = now + timing_.tRFC;
      break;
    }
    case DdrCommandType::kRefreshSb: {
      BankState& b = rank.banks[cmd.bank];
      b.busy_until = now + timing_.tRFCsb;
      b.next_act = std::max(b.next_act, b.busy_until);
      break;
    }
    case DdrCommandType::kRefreshNeighbors: {
      // Internally the device walks up to 2*blast victim rows, performing
      // an ACT+PRE pair for each; the bank is occupied for that long.
      BankState& b = rank.banks[cmd.bank];
      const Cycle per_row = timing_.tRC;
      b.busy_until = now + static_cast<Cycle>(2 * cmd.blast) * per_row + timing_.tRP;
      b.next_act = std::max(b.next_act, b.busy_until);
      break;
    }
  }
}

}  // namespace ht
