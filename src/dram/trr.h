// In-DRAM Target Row Refresh model (§3).
//
// Vendors ship blackbox TRR that tracks a small number n of candidate
// aggressor rows per bank and opportunistically refreshes their neighbours
// during regular REF commands. TRRespass [15] showed the tracker's small n
// is the weakness: hammering more than n rows uniformly evicts entries
// faster than they can be serviced. We model the tracker as a Misra-Gries
// style frequency table (insert-on-ACT, decrement-all-on-conflict), which
// reproduces exactly that bypass behaviour.
#ifndef HAMMERTIME_SRC_DRAM_TRR_H_
#define HAMMERTIME_SRC_DRAM_TRR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dram/config.h"

namespace ht {

// A victim repair the TRR engine wants performed during a REF.
struct TrrRepair {
  uint32_t bank = 0;
  uint32_t internal_row = 0;  // Aggressor row whose neighbours to refresh.
};

class TrrEngine {
 public:
  TrrEngine(const DramOrg& org, const TrrParams& params, uint64_t seed);

  // Observes an ACT (internal row). May sample it into the tracker.
  void OnActivate(uint32_t bank, uint32_t internal_row);

  // Called when the device executes a REF: selects up to
  // `refreshes_per_ref` tracked aggressors (highest estimated count first)
  // whose neighbours should be refreshed, and clears their entries.
  std::vector<TrrRepair> OnRefresh();

  bool enabled() const { return params_.enabled; }
  uint32_t table_entries() const { return params_.table_entries; }

 private:
  struct Entry {
    uint32_t row = 0;
    uint32_t count = 0;
  };

  DramOrg org_;
  TrrParams params_;
  Rng rng_;
  // Per-bank tracker tables.
  std::vector<std::vector<Entry>> tables_;
  uint32_t next_bank_rr_ = 0;  // Round-robin over banks when refreshing.
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_TRR_H_
