#include "dram/command.h"

#include <sstream>

namespace ht {

const char* ToString(DdrCommandType type) {
  switch (type) {
    case DdrCommandType::kActivate:
      return "ACT";
    case DdrCommandType::kPrecharge:
      return "PRE";
    case DdrCommandType::kPrechargeAll:
      return "PREA";
    case DdrCommandType::kRead:
      return "RD";
    case DdrCommandType::kWrite:
      return "WR";
    case DdrCommandType::kRefresh:
      return "REF";
    case DdrCommandType::kRefreshSb:
      return "REFSB";
    case DdrCommandType::kRefreshNeighbors:
      return "REF_NEIGHBORS";
  }
  return "?";
}

std::string DdrCommand::ToDebugString() const {
  std::ostringstream out;
  out << ToString(type) << " rank=" << rank;
  switch (type) {
    case DdrCommandType::kActivate:
      out << " bank=" << bank << " row=" << row;
      break;
    case DdrCommandType::kPrecharge:
      out << " bank=" << bank;
      break;
    case DdrCommandType::kRead:
    case DdrCommandType::kWrite:
      out << " bank=" << bank << " col=" << column;
      if (ap) {
        out << " ap";
      }
      break;
    case DdrCommandType::kRefreshNeighbors:
      out << " bank=" << bank << " row=" << row << " blast=" << blast;
      break;
    case DdrCommandType::kRefreshSb:
      out << " bank=" << bank;
      break;
    case DdrCommandType::kPrechargeAll:
    case DdrCommandType::kRefresh:
      break;
  }
  return out.str();
}

}  // namespace ht
