// DRAM organization, timing, retention, disturbance, and TRR parameters.
//
// All timings are expressed in DRAM clock cycles (nCK). The default
// profile models a DDR4-2400-like device. Because real refresh windows
// (64 ms ~ 76.8M cycles) make security experiments needlessly slow, the
// simulation profiles scale the refresh window and the maximum activation
// count (MAC) together, preserving the attack-headroom ratio
// (max achievable ACTs per row per window) / MAC that determines whether
// an attack can land. DESIGN.md §3 and EXPERIMENTS.md document the scale.
#ifndef HAMMERTIME_SRC_DRAM_CONFIG_H_
#define HAMMERTIME_SRC_DRAM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace ht {

// Geometry of the DRAM system (per §2.1: modules consist of banks; each
// bank is a set of row-column subarrays sharing one row buffer).
struct DramOrg {
  uint32_t channels = 1;
  uint32_t ranks = 1;
  uint32_t banks = 8;              // Banks per rank.
  uint32_t subarrays_per_bank = 8; // Electromagnetically isolated regions.
  uint32_t rows_per_subarray = 128;
  uint32_t columns = 128;          // Cache-line-sized columns per row (128 * 64B = 8 KB row).

  uint32_t rows_per_bank() const { return subarrays_per_bank * rows_per_subarray; }
  uint32_t total_banks() const { return channels * ranks * banks; }
  uint64_t total_rows() const { return static_cast<uint64_t>(total_banks()) * rows_per_bank(); }
  uint64_t row_bytes() const { return static_cast<uint64_t>(columns) * kLineBytes; }
  uint64_t capacity_bytes() const { return total_rows() * row_bytes(); }
  uint32_t SubarrayOfRow(uint32_t row) const { return row / rows_per_subarray; }
  uint32_t RowWithinSubarray(uint32_t row) const { return row % rows_per_subarray; }
};

// Per-command timing constraints, DDR4-2400-like (values in nCK).
struct DramTiming {
  uint32_t tRCD = 16;   // ACT -> RD/WR (same bank).
  uint32_t tRP = 16;    // PRE -> ACT (same bank).
  uint32_t tRAS = 39;   // ACT -> PRE (same bank).
  uint32_t tRC = 55;    // ACT -> ACT (same bank).
  uint32_t tRRD = 6;    // ACT -> ACT (different banks, same rank).
  uint32_t tFAW = 26;   // Window that may contain at most 4 ACTs per rank.
  uint32_t tCCD = 6;    // RD->RD / WR->WR (same rank) minimum spacing.
  uint32_t tCL = 16;    // RD -> first data.
  uint32_t tCWL = 12;   // WR -> first data.
  uint32_t tBL = 4;     // Burst length on the data bus.
  uint32_t tRTP = 9;    // RD -> PRE (same bank).
  uint32_t tWR = 18;    // End of write burst -> PRE (same bank).
  uint32_t tWTR = 9;    // End of write burst -> RD (same rank).
  uint32_t tRFC = 420;  // REF -> any command (rank busy).
  uint32_t tRFCsb = 140;  // Same-bank refresh (REFsb): only that bank busy.
  uint32_t tREFI = 8192;  // Average interval between REF commands.

  // RD-to-PRE earliest delta and WR-to-PRE earliest delta, derived.
  uint32_t ReadToPrecharge() const { return tRTP; }
  uint32_t WriteToPrecharge() const { return tCWL + tBL + tWR; }
  uint32_t WriteToRead() const { return tCWL + tBL + tWTR; }
};

// Retention / refresh behaviour (§2.1: each row must be refreshed within
// 64 ms of its last refresh; the module cycles through rows during the
// refresh interval; an ACT also repairs the row as a side effect).
struct RetentionParams {
  Cycle refresh_window = 4u << 20;  // tREFW, cycles. Scaled default (~3.5ms @1.2GHz).
  uint32_t ref_commands_per_window = 512;  // REF sweep granularity.
  // DDR5-style same-bank refresh: issue REFsb per bank (cheap, only that
  // bank stalls) instead of all-bank REF (whole rank stalls for tRFC).
  bool per_bank_refresh = false;
};

// Electromagnetic disturbance model (§2.1-2.2). Each aggressor ACT adds
// distance-weighted disturbance to rows within `blast_radius` in the same
// subarray; a victim whose accumulated disturbance reaches `mac` before
// its next refresh suffers bit flips.
struct DisturbanceParams {
  uint32_t mac = 2500;       // Maximum activation count (scaled units).
  uint32_t blast_radius = 2; // b: victims up to b rows from an aggressor.
  // Weight of an ACT at distance d is 1 / 2^(d-1): immediate neighbours
  // take full disturbance, further rows exponentially less.
  double DistanceWeight(uint32_t d) const {
    return d == 0 ? 0.0 : 1.0 / static_cast<double>(1u << (d - 1));
  }
  uint32_t min_flip_bits = 1;  // Bits flipped when a victim crosses MAC.
  uint32_t max_flip_bits = 4;
};

// In-DRAM Target Row Refresh model (§3: vendors track a small number n of
// aggressor rows and refresh their neighbours; bypassable with > n
// aggressors — TRRespass).
struct TrrParams {
  bool enabled = false;
  uint32_t table_entries = 4;     // n: tracked aggressors per bank.
  uint32_t refreshes_per_ref = 2; // Neighbour refreshes piggybacked per REF.
  // Minimum estimated count for an entry to be serviced at REF. Vendors
  // only act on rows their sampler believes are hot; with more uniform
  // aggressors than table entries, Misra-Gries estimates collapse toward
  // zero and nothing qualifies — the TRRespass bypass.
  uint32_t min_count_to_service = 2;
  // Sampler behaviour: probability an ACT is inspected by the tracker.
  double sample_probability = 1.0;
};

// SECDED ECC over each 64-bit word (one word per line in the store).
// Cojocar et al. [12] showed ECC raises the bar but does not stop
// Rowhammer: single-bit flips are corrected, double-bit flips are
// detected (machine-check -> DoS), and triple-bit flips in one word can
// escape silently. The device tracks a per-word corruption mask so reads
// reproduce exactly that behaviour.
struct EccParams {
  bool enabled = false;
};

// Vendor-internal logical->physical row remapping (§2.1: DRAM occasionally
// remaps two logically-adjacent rows to different internal locations).
struct RemapParams {
  bool enabled = false;
  double remap_fraction = 0.02;  // Fraction of rows remapped.
  uint64_t seed = 0x5eedULL;
  // If true, a remap may move a row into a *different* subarray — the
  // adversarial case for subarray isolation that §4.1 discusses.
  bool cross_subarray = false;
};

// Full device configuration.
struct DramConfig {
  std::string name = "ddr4-sim";
  DramOrg org;
  DramTiming timing;
  RetentionParams retention;
  DisturbanceParams disturbance;
  TrrParams trr;
  RemapParams remap;
  EccParams ecc;
  uint64_t flip_seed = 0xF11Au;

  // Cycles between REF commands so the whole window is swept exactly once.
  Cycle RefPeriod() const {
    return retention.refresh_window / retention.ref_commands_per_window;
  }
  // Rows refreshed by one REF command (per bank).
  uint32_t RowsPerRef() const {
    const uint32_t rows = org.rows_per_bank();
    const uint32_t refs = retention.ref_commands_per_window;
    return (rows + refs - 1) / refs;
  }

  // --- Profiles -----------------------------------------------------------

  // Scaled simulation default: ratios (refresh overhead ~5%, attack
  // headroom ~29x MAC) match a DDR4-2400 64 ms window device.
  static DramConfig SimDefault();

  // Density generations following Kim et al. [30]'s measured trend: MAC
  // drops by orders of magnitude and blast radius grows across
  // generations. MAC values are in the same scaled units as SimDefault()
  // (divide-by-55.6 scale versus the real 64 ms window; see EXPERIMENTS.md).
  static DramConfig DensityGeneration(int generation);

  // A deliberately tiny config for unit tests (2 banks, 2 subarrays,
  // 16 rows each) where adjacency is easy to reason about.
  static DramConfig Tiny();
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_CONFIG_H_
