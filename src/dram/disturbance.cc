#include "dram/disturbance.h"

namespace ht {

BankDisturbance::BankDisturbance(const DramOrg& org, const DisturbanceParams& params)
    : org_(org), params_(params) {
  level_.assign(org_.rows_per_bank(), 0.0);
  acts_.assign(org_.rows_per_bank(), 0);
}

void BankDisturbance::OnActivate(uint32_t row, std::vector<DisturbanceVictim>& victims) {
  // The ACT repairs the activated row itself.
  level_[row] = 0.0;
  acts_[row] = 0;

  const uint32_t subarray = org_.SubarrayOfRow(row);
  const uint32_t rows_per_bank = org_.rows_per_bank();
  const double mac = static_cast<double>(params_.mac);
  for (uint32_t d = 1; d <= params_.blast_radius; ++d) {
    const double w = params_.DistanceWeight(d);
    // Victim below.
    if (row >= d) {
      const uint32_t v = row - d;
      if (org_.SubarrayOfRow(v) == subarray) {
        level_[v] += w;
        ++acts_[v];
        if (level_[v] >= mac) {
          victims.push_back({v, row});
          level_[v] = 0.0;
          acts_[v] = 0;
        }
      }
    }
    // Victim above.
    const uint32_t v = row + d;
    if (v < rows_per_bank && org_.SubarrayOfRow(v) == subarray) {
      level_[v] += w;
      ++acts_[v];
      if (level_[v] >= mac) {
        victims.push_back({v, row});
        level_[v] = 0.0;
        acts_[v] = 0;
      }
    }
  }
}

void BankDisturbance::OnRefreshRow(uint32_t row) {
  level_[row] = 0.0;
  acts_[row] = 0;
}

}  // namespace ht
