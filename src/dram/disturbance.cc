#include "dram/disturbance.h"

namespace ht {

BankDisturbance::BankDisturbance(const DramOrg& org, const DisturbanceParams& params)
    : org_(org), params_(params) {}

void BankDisturbance::OnActivate(uint32_t row, std::vector<DisturbanceVictim>& victims) {
  // The ACT repairs the activated row itself. Absent rows are already at
  // zero, so only reset a cell that exists.
  if (Cell* self = rows_.Find(row)) {
    *self = Cell{};
  }

  const uint32_t subarray = org_.SubarrayOfRow(row);
  const uint32_t rows_per_bank = org_.rows_per_bank();
  const double mac = static_cast<double>(params_.mac);
  for (uint32_t d = 1; d <= params_.blast_radius; ++d) {
    const double w = params_.DistanceWeight(d);
    // Victim below.
    if (row >= d) {
      const uint32_t v = row - d;
      if (org_.SubarrayOfRow(v) == subarray) {
        Cell& cell = rows_.FindOrInsert(v);
        cell.level += w;
        ++cell.acts;
        if (cell.level >= mac) {
          victims.push_back({v, row});
          cell = Cell{};
        }
      }
    }
    // Victim above.
    const uint32_t v = row + d;
    if (v < rows_per_bank && org_.SubarrayOfRow(v) == subarray) {
      Cell& cell = rows_.FindOrInsert(v);
      cell.level += w;
      ++cell.acts;
      if (cell.level >= mac) {
        victims.push_back({v, row});
        cell = Cell{};
      }
    }
  }
  SyncProbes();
}

void BankDisturbance::OnRefreshRow(uint32_t row) {
  if (Cell* cell = rows_.Find(row)) {
    *cell = Cell{};
  }
  SyncProbes();
}

}  // namespace ht
