// Electromagnetic disturbance accounting (§2.1-2.2).
//
// Each ACT of an aggressor row adds distance-weighted disturbance to the
// rows within the configured blast radius *in the same subarray* (subarrays
// are electromagnetically isolated — the physical fact §4.1's isolation
// primitive builds on). A victim whose accumulated disturbance reaches the
// module MAC before its next refresh is reported as flipped; refreshing a
// row (REF sweep, its own ACT, TRR, REF_NEIGHBORS, or the proposed refresh
// instruction) zeroes its accumulator.
#ifndef HAMMERTIME_SRC_DRAM_DISTURBANCE_H_
#define HAMMERTIME_SRC_DRAM_DISTURBANCE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dram/config.h"

namespace ht {

// A victim row that crossed the MAC on some aggressor activation.
struct DisturbanceVictim {
  uint32_t row = 0;            // Internal row index within the bank.
  uint32_t aggressor_row = 0;  // Internal row whose ACT tipped it over.
};

// Tracks disturbance for every row of one bank.
class BankDisturbance {
 public:
  BankDisturbance(const DramOrg& org, const DisturbanceParams& params);

  // Registers an ACT of `row` (internal index). The activated row itself is
  // repaired as a side effect (§2.1). Appends any victims that crossed the
  // MAC to `victims`; their accumulators are reset so sustained hammering
  // produces periodic further flips.
  void OnActivate(uint32_t row, std::vector<DisturbanceVictim>& victims);

  // Registers a refresh (repair) of `row` without disturbance side effects.
  void OnRefreshRow(uint32_t row);

  // Current accumulated disturbance of `row`, in ACT-equivalents.
  double Level(uint32_t row) const { return level_[row]; }

  // Total ACTs of `row` since its last repair (the paper's per-row
  // activation-count view; used by tests and by MC-side mitigations that
  // model perfect knowledge).
  uint32_t ActsSinceRepair(uint32_t row) const { return acts_[row]; }

 private:
  DramOrg org_;
  DisturbanceParams params_;
  std::vector<double> level_;   // Per internal row.
  std::vector<uint32_t> acts_;  // Per internal row.
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_DISTURBANCE_H_
