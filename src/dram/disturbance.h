// Electromagnetic disturbance accounting (§2.1-2.2).
//
// Each ACT of an aggressor row adds distance-weighted disturbance to the
// rows within the configured blast radius *in the same subarray* (subarrays
// are electromagnetically isolated — the physical fact §4.1's isolation
// primitive builds on). A victim whose accumulated disturbance reaches the
// module MAC before its next refresh is reported as flipped; refreshing a
// row (REF sweep, its own ACT, TRR, REF_NEIGHBORS, or the proposed refresh
// instruction) zeroes its accumulator.
//
// Storage is sparse: a flat open-addressing table holds accumulators only
// for rows that have actually been disturbed, so constructing a bank is
// O(1) instead of O(rows_per_bank) and sweep grids with thousands of
// scenario cells no longer pay a dense per-bank allocation each. Rows
// absent from the table are at level zero by definition, which also makes
// "repair" a plain in-place zeroing — no erase needed.
#ifndef HAMMERTIME_SRC_DRAM_DISTURBANCE_H_
#define HAMMERTIME_SRC_DRAM_DISTURBANCE_H_

#include <cstdint>
#include <vector>

#include "common/flat_table.h"
#include "common/stats.h"
#include "common/types.h"
#include "dram/config.h"

namespace ht {

// A victim row that crossed the MAC on some aggressor activation.
struct DisturbanceVictim {
  uint32_t row = 0;            // Internal row index within the bank.
  uint32_t aggressor_row = 0;  // Internal row whose ACT tipped it over.
};

// Tracks disturbance for the touched rows of one bank.
class BankDisturbance {
 public:
  BankDisturbance(const DramOrg& org, const DisturbanceParams& params);

  // Registers an ACT of `row` (internal index). The activated row itself is
  // repaired as a side effect (§2.1). Appends any victims that crossed the
  // MAC to `victims`; their accumulators are reset so sustained hammering
  // produces periodic further flips.
  void OnActivate(uint32_t row, std::vector<DisturbanceVictim>& victims);

  // Registers a refresh (repair) of `row` without disturbance side effects.
  void OnRefreshRow(uint32_t row);

  // Current accumulated disturbance of `row`, in ACT-equivalents.
  double Level(uint32_t row) const {
    const Cell* cell = rows_.Find(row);
    return cell != nullptr ? cell->level : 0.0;
  }

  // Total ACTs of `row` since its last repair (the paper's per-row
  // activation-count view; used by tests and by MC-side mitigations that
  // model perfect knowledge).
  uint32_t ActsSinceRepair(uint32_t row) const {
    const Cell* cell = rows_.Find(row);
    return cell != nullptr ? cell->acts : 0;
  }

  // Forwards the row-table's probe count to an interned stats counter
  // (conventionally "act.table_probes" on the owning device).
  void set_probe_counter(Counter* counter) { c_probes_ = counter; }

 private:
  struct Cell {
    double level = 0.0;
    uint32_t acts = 0;
  };

  void SyncProbes() {
    if (c_probes_ != nullptr) {
      c_probes_->Add(rows_.probes() - probes_synced_);
      probes_synced_ = rows_.probes();
    }
  }

  DramOrg org_;
  DisturbanceParams params_;
  FlatRowTable<Cell> rows_;  // Keyed by internal row index.
  Counter* c_probes_ = nullptr;
  uint64_t probes_synced_ = 0;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_DISTURBANCE_H_
