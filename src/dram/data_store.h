// Sparse storage for row contents plus bit-flip corruption injection.
//
// To keep memory bounded we store one 64-bit word per cache-line-sized
// column — enough to detect and localize corruption (which line of which
// row, which bit) without holding 64 bytes per line. Experiments write
// known patterns and later verify them; a Rowhammer flip XORs a random bit
// of a random column, so verification fails exactly like it would on real
// hardware.
#ifndef HAMMERTIME_SRC_DRAM_DATA_STORE_H_
#define HAMMERTIME_SRC_DRAM_DATA_STORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ht {

class RowDataStore {
 public:
  RowDataStore(uint32_t columns, uint64_t flip_seed) : columns_(columns), rng_(flip_seed) {}

  // Writes the representative word for (row_key, column).
  void WriteLine(uint64_t row_key, uint32_t column, uint64_t value);

  // Reads the representative word; rows never written read as zero.
  uint64_t ReadLine(uint64_t row_key, uint32_t column) const;

  // Whether any line of the row has ever been written.
  bool RowPopulated(uint64_t row_key) const { return rows_.contains(row_key); }

  // Flips `bits` random bits across the row. Returns the number of bits
  // actually flipped in stored data (0 if the row was never written; the
  // caller still records the flip event).
  uint32_t FlipRandomBits(uint64_t row_key, uint32_t bits);

  // XOR distance between the stored word and the last written (clean)
  // word — the accumulated Rowhammer corruption of that word. Writes
  // clear it. ECC decisions key off its popcount.
  uint64_t CorruptionMask(uint64_t row_key, uint32_t column) const;

  size_t populated_rows() const { return rows_.size(); }

 private:
  uint64_t MaskKey(uint64_t row_key, uint32_t column) const {
    return row_key * columns_ + column;
  }

  uint32_t columns_;
  Rng rng_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> rows_;
  std::unordered_map<uint64_t, uint64_t> corruption_;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_DATA_STORE_H_
