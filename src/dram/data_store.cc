#include "dram/data_store.h"

namespace ht {

void RowDataStore::WriteLine(uint64_t row_key, uint32_t column, uint64_t value) {
  auto [it, inserted] = rows_.try_emplace(row_key);
  if (inserted) {
    it->second.assign(columns_, 0);
  }
  it->second[column] = value;
  corruption_.erase(MaskKey(row_key, column));  // Fresh data is clean.
}

uint64_t RowDataStore::ReadLine(uint64_t row_key, uint32_t column) const {
  auto it = rows_.find(row_key);
  if (it == rows_.end()) {
    return 0;
  }
  return it->second[column];
}

uint32_t RowDataStore::FlipRandomBits(uint64_t row_key, uint32_t bits) {
  auto it = rows_.find(row_key);
  if (it == rows_.end()) {
    // Still consume RNG draws (two per bit: column + bit position) so flip
    // positions stay deterministic regardless of which rows hold data.
    for (uint32_t i = 0; i < bits; ++i) {
      rng_.Next();
      rng_.Next();
    }
    return 0;
  }
  for (uint32_t i = 0; i < bits; ++i) {
    const uint32_t column = static_cast<uint32_t>(rng_.NextBelow(columns_));
    const uint32_t bit = static_cast<uint32_t>(rng_.NextBelow(64));
    it->second[column] ^= (1ULL << bit);
    corruption_[MaskKey(row_key, column)] ^= (1ULL << bit);
  }
  return bits;
}

uint64_t RowDataStore::CorruptionMask(uint64_t row_key, uint32_t column) const {
  auto it = corruption_.find(MaskKey(row_key, column));
  return it == corruption_.end() ? 0 : it->second;
}

}  // namespace ht
