#include "dram/remap.h"

#include <numeric>

#include "common/rng.h"

namespace ht {

RowRemapTable::RowRemapTable(const DramOrg& org, const RemapParams& params) {
  const uint32_t rows = org.rows_per_bank();
  to_internal_.resize(rows);
  std::iota(to_internal_.begin(), to_internal_.end(), 0);

  if (params.enabled && params.remap_fraction > 0.0) {
    Rng rng(params.seed);
    const uint32_t swaps = static_cast<uint32_t>(rows * params.remap_fraction / 2.0);
    for (uint32_t i = 0; i < swaps; ++i) {
      const uint32_t a = static_cast<uint32_t>(rng.NextBelow(rows));
      uint32_t b;
      if (params.cross_subarray) {
        b = static_cast<uint32_t>(rng.NextBelow(rows));
      } else {
        // Partner within the same subarray.
        const uint32_t base = org.SubarrayOfRow(a) * org.rows_per_subarray;
        b = base + static_cast<uint32_t>(rng.NextBelow(org.rows_per_subarray));
      }
      std::swap(to_internal_[a], to_internal_[b]);
    }
  }

  to_logical_.resize(rows);
  for (uint32_t logical = 0; logical < rows; ++logical) {
    to_logical_[to_internal_[logical]] = logical;
  }
  for (uint32_t logical = 0; logical < rows; ++logical) {
    if (to_internal_[logical] != logical) {
      ++remapped_rows_;
    }
  }
}

}  // namespace ht
