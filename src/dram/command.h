// The DDR command set the memory controller issues to the device,
// including the paper's proposed REF_NEIGHBORS extension (§4.3).
#ifndef HAMMERTIME_SRC_DRAM_COMMAND_H_
#define HAMMERTIME_SRC_DRAM_COMMAND_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace ht {

enum class DdrCommandType : uint8_t {
  kActivate,      // ACT: open `row` in `bank`, connect to the row buffer.
  kPrecharge,     // PRE: close the open row in `bank`.
  kPrechargeAll,  // PREA: close all banks in the rank.
  kRead,          // RD: read `column` of the open row in `bank`.
  kWrite,         // WR: write `column` of the open row in `bank`.
  kRefresh,       // REF: refresh the next sweep-group of rows in every bank.
  kRefreshSb,     // REFsb (DDR5-style): refresh the next sweep-group of
                  // rows in one bank; only that bank is busy (tRFCsb).
  // Proposed extension (§4.3): refresh the victims within `blast` rows of
  // aggressor `row` in `bank`. Only legal when the device advertises it.
  kRefreshNeighbors,
};

const char* ToString(DdrCommandType type);

struct DdrCommand {
  DdrCommandType type = DdrCommandType::kActivate;
  uint32_t rank = 0;
  uint32_t bank = 0;    // Unused for REF / PREA.
  uint32_t row = 0;     // ACT / REF_NEIGHBORS only.
  uint32_t column = 0;  // RD / WR only.
  uint32_t blast = 0;   // REF_NEIGHBORS only: radius argument b.
  bool ap = false;      // RD/WR auto-precharge (RDA/WRA): the bank closes
                        // itself after the access — the closed-page policy.

  static DdrCommand Act(uint32_t rank, uint32_t bank, uint32_t row) {
    return {DdrCommandType::kActivate, rank, bank, row, 0, 0, false};
  }
  static DdrCommand Pre(uint32_t rank, uint32_t bank) {
    return {DdrCommandType::kPrecharge, rank, bank, 0, 0, 0, false};
  }
  static DdrCommand PreAll(uint32_t rank) {
    return {DdrCommandType::kPrechargeAll, rank, 0, 0, 0, 0, false};
  }
  static DdrCommand Rd(uint32_t rank, uint32_t bank, uint32_t column, bool ap = false) {
    return {DdrCommandType::kRead, rank, bank, 0, column, 0, ap};
  }
  static DdrCommand Wr(uint32_t rank, uint32_t bank, uint32_t column, bool ap = false) {
    return {DdrCommandType::kWrite, rank, bank, 0, column, 0, ap};
  }
  static DdrCommand Ref(uint32_t rank) {
    return {DdrCommandType::kRefresh, rank, 0, 0, 0, 0, false};
  }
  static DdrCommand RefSb(uint32_t rank, uint32_t bank) {
    return {DdrCommandType::kRefreshSb, rank, bank, 0, 0, 0, false};
  }
  static DdrCommand RefNeighbors(uint32_t rank, uint32_t bank, uint32_t row, uint32_t blast) {
    return {DdrCommandType::kRefreshNeighbors, rank, bank, row, 0, blast, false};
  }

  std::string ToDebugString() const;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_DRAM_COMMAND_H_
