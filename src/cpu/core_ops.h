// The micro-ISA executed by model cores, including the paper's proposed
// host-privileged `refresh` instruction (§4.3) and cache-line lock/unlock
// operations (§4.2).
#ifndef HAMMERTIME_SRC_CPU_CORE_OPS_H_
#define HAMMERTIME_SRC_CPU_CORE_OPS_H_

#include <cstdint>

#include "common/types.h"

namespace ht {

enum class CoreOpKind : uint8_t {
  kLoad,        // Read one line at `va`.
  kStore,       // Write `value` to the line at `va`.
  kFlush,       // clflush the line at `va`.
  kFence,       // Wait for all outstanding accesses to complete.
  kRefreshRow,  // Proposed refresh instruction: refresh the row of `va`.
                // `auto_precharge` is the paper's `ap` bit. Host-only.
  kLockLine,    // Pin the line at `va` into the LLC.
  kUnlockLine,  // Release a pinned line.
  kIdle,        // Stall for `idle_cycles` (models compute).
  kHalt,        // Stream exhausted; core stops.
};

struct CoreOp {
  CoreOpKind kind = CoreOpKind::kHalt;
  VirtAddr va = 0;
  uint64_t value = 0;
  uint32_t idle_cycles = 0;
  bool auto_precharge = true;

  static CoreOp Load(VirtAddr va) { return {CoreOpKind::kLoad, va, 0, 0, true}; }
  static CoreOp Store(VirtAddr va, uint64_t value) {
    return {CoreOpKind::kStore, va, value, 0, true};
  }
  static CoreOp Flush(VirtAddr va) { return {CoreOpKind::kFlush, va, 0, 0, true}; }
  static CoreOp Fence() { return {CoreOpKind::kFence, 0, 0, 0, true}; }
  static CoreOp RefreshRow(VirtAddr va, bool ap = true) {
    return {CoreOpKind::kRefreshRow, va, 0, 0, ap};
  }
  static CoreOp LockLine(VirtAddr va) { return {CoreOpKind::kLockLine, va, 0, 0, true}; }
  static CoreOp UnlockLine(VirtAddr va) { return {CoreOpKind::kUnlockLine, va, 0, 0, true}; }
  static CoreOp Idle(uint32_t cycles) { return {CoreOpKind::kIdle, 0, 0, cycles, true}; }
  static CoreOp Halt() { return {CoreOpKind::kHalt, 0, 0, 0, true}; }
};

// A stream of core operations (workload or attack pattern). Streams are
// pull-based: the core asks for the next op when it can issue one.
class InstructionStream {
 public:
  virtual ~InstructionStream() = default;

  virtual CoreOp Next() = 0;

  // Max useful overlapping accesses (1 = fully dependent, e.g. pointer
  // chase). The core issues min(this, its own window) ops concurrently.
  virtual uint32_t IlpHint() const { return 8; }
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_CPU_CORE_OPS_H_
