// Shared last-level cache model: set-associative, write-back,
// write-allocate, LRU, with two features the paper's defenses rely on:
//
//  * clflush-style invalidation (attackers use it to force the cache
//    misses that turn loads into DRAM ACTs — §4.3);
//  * way-locking (§4.2: "cache line locking ... temporarily pin a line to
//    the processor cache, already available on many ARM processors"),
//    capped at a configurable number of ways per set so locked lines
//    cannot starve the set.
//
// The cache stores each line's representative data word so that a victim
// line cached before a Rowhammer flip correctly shields its reader until
// eviction — matching real coherence behaviour.
#ifndef HAMMERTIME_SRC_CPU_CACHE_H_
#define HAMMERTIME_SRC_CPU_CACHE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ht {

struct CacheConfig {
  uint32_t sets = 1024;
  uint32_t ways = 8;
  uint32_t max_locked_ways = 2;  // Per-set cap on locked lines.
  uint32_t hit_latency = 8;      // Cycles (DRAM-clock equivalents).
};

// Result of a lookup/fill style operation.
struct CacheAccessResult {
  bool hit = false;
  // Dirty victim that must be written back, if an eviction occurred.
  bool writeback = false;
  PhysAddr writeback_addr = 0;
  uint64_t writeback_value = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Read probe: hits return the cached value. Misses change nothing —
  // the caller fetches from memory and calls Fill().
  std::optional<uint64_t> Lookup(PhysAddr addr);

  // Write probe: on hit, updates the line in place (dirty) and returns
  // true. On miss returns false (caller fetches, then Fill + StoreHit).
  bool StoreHit(PhysAddr addr, uint64_t value);

  // Inserts a line after a fetch; may evict (LRU among unlocked ways).
  CacheAccessResult Fill(PhysAddr addr, uint64_t value, bool dirty);

  // clflush: invalidates the line; reports a writeback if it was dirty.
  // A *locked* line resists guest flushes (the §4.2 locking primitive
  // exists precisely to stop attacker-forced evictions): the data is
  // written back for coherence but the line stays resident and locked.
  // Host flushes (`privileged`) always invalidate.
  CacheAccessResult Flush(PhysAddr addr, bool privileged = false);

  // Locks the (present) line; fails if absent or the set's locked-way
  // budget is exhausted. Locked lines never get evicted and never ACT.
  bool Lock(PhysAddr addr);
  bool Unlock(PhysAddr addr);
  void UnlockAll();
  uint32_t locked_lines() const { return locked_lines_; }

  // Drains every dirty line (end-of-run accounting), invoking `sink` for
  // each. Lines stay resident and become clean.
  void WritebackAll(const std::function<void(PhysAddr, uint64_t)>& sink);

  StatSet& stats() { return stats_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    bool locked = false;
    uint64_t tag = 0;
    uint64_t value = 0;
    uint64_t lru = 0;  // Larger = more recently used.
  };

  uint64_t SetOf(PhysAddr addr) const { return (addr / kLineBytes) % config_.sets; }
  uint64_t TagOf(PhysAddr addr) const { return (addr / kLineBytes) / config_.sets; }
  Line* FindLine(PhysAddr addr);

  CacheConfig config_;
  std::vector<Line> lines_;  // sets * ways.
  uint64_t lru_clock_ = 0;
  uint32_t locked_lines_ = 0;
  StatSet stats_;

  // Interned stat handles (see common/stats.h for lifetime rules).
  Counter* c_read_hits_;
  Counter* c_read_misses_;
  Counter* c_write_hits_;
  Counter* c_write_misses_;
  Counter* c_fills_;
  Counter* c_evictions_;
  Counter* c_writebacks_;
  Counter* c_flushes_;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_CPU_CACHE_H_
