#include "cpu/core.h"

#include "common/log.h"

namespace ht {

Core::Core(RequestorId id, DomainId domain, const CoreConfig& config, Cache* cache,
           MemoryController* mc)
    : id_(id), domain_(domain), config_(config), cache_(cache), mc_(mc),
      window_(config.window) {
  c_fence_stalls_ = stats_.counter("core.fence_stalls");
  c_window_stalls_ = stats_.counter("core.window_stalls");
  c_translation_faults_ = stats_.counter("core.translation_faults");
  c_flushes_ = stats_.counter("core.flushes");
  c_load_hits_ = stats_.counter("core.load_hits");
  c_store_hits_ = stats_.counter("core.store_hits");
  c_load_misses_ = stats_.counter("core.load_misses");
  c_store_misses_ = stats_.counter("core.store_misses");
  c_mc_backpressure_ = stats_.counter("core.mc_backpressure");
  h_miss_latency_ = stats_.histogram("core.miss_latency");
}

void Core::set_stream(std::unique_ptr<InstructionStream> stream) {
  stream_ = std::move(stream);
  if (stream_ != nullptr) {
    window_ = std::min(config_.window, std::max(1u, stream_->IlpHint()));
    halted_ = false;
  }
}

Cycle Core::NextWake(Cycle now) const {
  if (!stalled_writebacks_.empty()) {
    return now;  // Retries the MC every cycle.
  }
  if (halted_ || stream_ == nullptr || refresh_pending_) {
    // Nothing to do until an MC-side event (response/refresh completion),
    // and the MC's own NextWake covers those.
    return kNeverCycle;
  }
  if (config_.event_driven && (window_stalled_ || fence_stalled_)) {
    // Blocked on outstanding responses; OnResponse reopens the gate, and
    // the MC's NextWake covers the completion that delivers it. Stall
    // cycles are interval-accounted, so sleeping loses no stats.
    return kNeverCycle;
  }
  // Issuable as soon as the issue gate opens.
  return std::max(now, next_issue_);
}

void Core::Tick(Cycle now) {
  // Retry writebacks the MC rejected earlier (queue backpressure).
  while (!stalled_writebacks_.empty()) {
    if (!mc_->Enqueue(stalled_writebacks_.front(), now)) {
      break;
    }
    stalled_writebacks_.pop_front();
  }

  if (halted_ || stream_ == nullptr || now < next_issue_ || refresh_pending_) {
    return;
  }
  if (window_stalled_ || fence_stalled_) {
    return;  // Interval is open; the unblocking OnResponse closes it.
  }
  if (fence_pending_) {
    if (outstanding_ != 0) {
      fence_stalled_ = true;
      fence_stall_since_ = now;
      return;
    }
    fence_pending_ = false;
  }
  if (!current_op_.has_value()) {
    current_op_ = stream_->Next();
  }
  Execute(*current_op_, now);
}

void Core::SyncStallStats(Cycle now) {
  if (window_stalled_) {
    c_window_stalls_->Add(now - window_stall_since_);
    window_stall_since_ = now;
  }
  if (fence_stalled_) {
    c_fence_stalls_->Add(now - fence_stall_since_);
    fence_stall_since_ = now;
  }
}

void Core::Execute(const CoreOp& op, Cycle now) {
  switch (op.kind) {
    case CoreOpKind::kHalt:
      halted_ = true;
      current_op_.reset();
      return;
    case CoreOpKind::kIdle:
      next_issue_ = now + op.idle_cycles;
      ++ops_completed_;
      current_op_.reset();
      return;
    case CoreOpKind::kFence:
      fence_pending_ = true;
      ++ops_completed_;
      current_op_.reset();
      return;
    case CoreOpKind::kLoad:
    case CoreOpKind::kStore: {
      if (outstanding_ >= window_) {
        // One stall interval covers every cycle until a response frees a
        // window slot; equivalent to the per-cycle count a cycle-accurate
        // tick loop would produce (the op and issue gate are frozen).
        window_stalled_ = true;
        window_stall_since_ = now;
        return;
      }
      const auto pa = translate_ ? translate_(op.va) : std::optional<PhysAddr>(op.va);
      if (!pa.has_value()) {
        c_translation_faults_->Increment();
        ++ops_completed_;
        current_op_.reset();
        return;
      }
      if (IssueAccess(op, *pa, now)) {
        ++ops_completed_;
        current_op_.reset();
      }
      return;
    }
    case CoreOpKind::kFlush: {
      const auto pa = translate_ ? translate_(op.va) : std::optional<PhysAddr>(op.va);
      if (pa.has_value()) {
        const CacheAccessResult result = cache_->Flush(*pa, config_.is_host);
        if (result.writeback) {
          EnqueueWriteback(result.writeback_addr, result.writeback_value, now);
        }
      }
      c_flushes_->Increment();
      next_issue_ = now + config_.flush_latency;
      ++ops_completed_;
      current_op_.reset();
      return;
    }
    case CoreOpKind::kRefreshRow: {
      if (!config_.is_host) {
        // §4.3: "refresh should be a host-privileged instruction".
        stats_.Add("core.refresh_priv_faults");
        ++ops_completed_;
        current_op_.reset();
        return;
      }
      const auto pa = translate_ ? translate_(op.va) : std::optional<PhysAddr>(op.va);
      if (!pa.has_value()) {
        c_translation_faults_->Increment();
        ++ops_completed_;
        current_op_.reset();
        return;
      }
      const bool accepted = mc_->RefreshRow(*pa, op.auto_precharge, now,
                                            [this](const RefreshDone&) {
                                              refresh_pending_ = false;
                                            });
      if (!accepted) {
        stats_.Add("core.refresh_retries");
        return;  // MC internal queue full; retry next cycle.
      }
      refresh_pending_ = true;
      stats_.Add("core.refresh_instrs");
      ++ops_completed_;
      current_op_.reset();
      return;
    }
    case CoreOpKind::kLockLine:
    case CoreOpKind::kUnlockLine: {
      const auto pa = translate_ ? translate_(op.va) : std::optional<PhysAddr>(op.va);
      if (pa.has_value()) {
        if (op.kind == CoreOpKind::kLockLine) {
          if (!cache_->Lock(*pa)) {
            stats_.Add("core.lock_failures");
          }
        } else {
          cache_->Unlock(*pa);
        }
      }
      next_issue_ = now + 2;
      ++ops_completed_;
      current_op_.reset();
      return;
    }
  }
}

bool Core::IssueAccess(const CoreOp& op, PhysAddr pa, Cycle now) {
  if (op.kind == CoreOpKind::kLoad) {
    const auto hit = cache_->Lookup(pa);
    if (hit.has_value()) {
      next_issue_ = now + cache_->config().hit_latency;
      c_load_hits_->Increment();
      return true;
    }
  } else {
    if (cache_->StoreHit(pa, op.value)) {
      next_issue_ = now + cache_->config().hit_latency;
      c_store_hits_->Increment();
      return true;
    }
  }

  // Miss: fetch the line. Stores write-allocate — the fill completes the
  // store with the new value.
  const DomainId domain = domain_resolver_ ? domain_resolver_(op.va) : domain_;
  MemRequest request;
  request.id = NextRequestId();
  request.op = MemOp::kRead;
  request.addr = pa / kLineBytes * kLineBytes;
  request.requestor = id_;
  request.domain = domain;
  if (!mc_->Enqueue(request, now)) {
    c_mc_backpressure_->Increment();
    return false;  // Retry next cycle.
  }
  if (op.kind == CoreOpKind::kStore) {
    pending_stores_[request.id] = {op.value};
    c_store_misses_->Increment();
  } else {
    c_load_misses_->Increment();
  }
  ++outstanding_;
  next_issue_ = now + 1;
  if (miss_observer_) {
    miss_observer_({id_, domain,
                    request.addr,
                    op.kind == CoreOpKind::kStore ? MemOp::kWrite : MemOp::kRead, now});
  }
  return true;
}

void Core::EnqueueWriteback(PhysAddr addr, uint64_t value, Cycle now) {
  MemRequest writeback;
  writeback.id = NextRequestId();
  writeback.op = MemOp::kWrite;
  writeback.addr = addr;
  writeback.write_value = value;
  writeback.requestor = id_;
  // Writebacks carry only the physical victim address, so a mux core
  // cannot recover the owning tenant here; they keep the carrier core's
  // domain (host-attributed eviction traffic, like real uncore WBs).
  writeback.domain = domain_;
  if (!mc_->Enqueue(writeback, now)) {
    stalled_writebacks_.push_back(writeback);
  }
}

void Core::OnResponse(const MemResponse& response, Cycle now) {
  if (response.op == MemOp::kWrite) {
    return;  // Posted writebacks need no action.
  }
  uint64_t fill_value = response.read_value;
  bool dirty = false;
  auto store = pending_stores_.find(response.id);
  if (store != pending_stores_.end()) {
    fill_value = store->second.value;
    dirty = true;
    pending_stores_.erase(store);
  }
  const CacheAccessResult fill = cache_->Fill(response.addr, fill_value, dirty);
  if (fill.writeback) {
    EnqueueWriteback(fill.writeback_addr, fill.writeback_value, now);
  }
  if (outstanding_ > 0) {
    --outstanding_;
  }
  if (window_stalled_ && outstanding_ < window_) {
    c_window_stalls_->Add(now - window_stall_since_);
    window_stalled_ = false;
  }
  if (fence_stalled_ && outstanding_ == 0) {
    c_fence_stalls_->Add(now - fence_stall_since_);
    fence_stalled_ = false;
  }
  h_miss_latency_->Record(response.Latency());
}

}  // namespace ht
