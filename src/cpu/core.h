// An in-order core with a configurable memory-level-parallelism window.
//
// Cores pull CoreOps from an InstructionStream, translate virtual
// addresses through the host OS page tables, and access memory through
// the shared LLC. Loads/stores that miss become MemRequests to the
// memory controller; up to `window` independent accesses may be
// outstanding (pointer-chase streams hint window 1).
//
// The core also executes the paper's proposed host-privileged refresh
// instruction (§4.3): guest cores attempting it take a privilege fault.
#ifndef HAMMERTIME_SRC_CPU_CORE_H_
#define HAMMERTIME_SRC_CPU_CORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/stats.h"
#include "common/types.h"
#include "cpu/cache.h"
#include "cpu/core_ops.h"
#include "mc/controller.h"
#include "mc/request.h"

namespace ht {

// Observed LLC miss — what CPU performance counters can see. Note DMA
// traffic never produces these events (ANVIL's blind spot, §1).
struct MissEvent {
  RequestorId core = 0;
  DomainId domain = kInvalidDomain;
  PhysAddr addr = 0;
  MemOp op = MemOp::kRead;
  Cycle cycle = 0;
};
using MissObserver = std::function<void(const MissEvent&)>;

struct CoreConfig {
  uint32_t window = 8;        // Max outstanding independent accesses.
  uint32_t flush_latency = 4; // Cycles consumed by clflush issue.
  bool is_host = false;       // May execute the refresh instruction.
  // Event-driven stalls: while window- or fence-stalled the core sleeps
  // (NextWake = kNeverCycle) instead of ticking every cycle, waking when
  // the unblocking MC response lands. Stall cycles are accounted as
  // intervals in both modes, so the stall counters are identical either
  // way; disable to keep the per-cycle wake pattern for cross-checking.
  bool event_driven = true;
};

using TranslateFn = std::function<std::optional<PhysAddr>(VirtAddr)>;
// Maps a VA to the trust domain issuing it. Installed alongside a mux
// translator when one core carries many tenants' streams (cloud mode),
// so MC-side domain accounting sees the tenant, not the carrier core.
using DomainResolver = std::function<DomainId(VirtAddr)>;

class Core {
 public:
  Core(RequestorId id, DomainId domain, const CoreConfig& config, Cache* cache,
       MemoryController* mc);

  void set_stream(std::unique_ptr<InstructionStream> stream);
  void set_translate(TranslateFn translate) { translate_ = std::move(translate); }
  void set_miss_observer(MissObserver observer) { miss_observer_ = std::move(observer); }
  void set_domain_resolver(DomainResolver resolver) { domain_resolver_ = std::move(resolver); }

  // Advances the core one cycle: retries stalled writebacks, then issues
  // at most one new operation.
  void Tick(Cycle now);

  // Earliest cycle >= now at which Tick could change state or emit a stat.
  // kNeverCycle means the core only wakes through the MC (halted, no
  // stream, or blocked on an in-flight refresh instruction — states where
  // per-cycle ticking is a no-op until an MC event lands).
  Cycle NextWake(Cycle now) const;

  // Delivers a completed memory request (routed by the System).
  void OnResponse(const MemResponse& response, Cycle now);

  // Folds any open stall interval into the stall counters up to `now`
  // (idempotent; the interval stays open). Stall cycles are counted as
  // closed intervals, so callers reading core stats mid-stall — e.g.
  // System::CollectStats at end of run — must sync first.
  void SyncStallStats(Cycle now);

  bool halted() const { return halted_; }
  uint64_t ops_completed() const { return ops_completed_; }
  uint32_t outstanding() const { return outstanding_; }
  RequestorId id() const { return id_; }
  DomainId domain() const { return domain_; }

  StatSet& stats() { return stats_; }

 private:
  struct PendingStore {
    uint64_t value = 0;
  };

  void Execute(const CoreOp& op, Cycle now);
  bool IssueAccess(const CoreOp& op, PhysAddr pa, Cycle now);
  void EnqueueWriteback(PhysAddr addr, uint64_t value, Cycle now);
  uint64_t NextRequestId() { return (static_cast<uint64_t>(id_) << 40) | next_seq_++; }

  RequestorId id_;
  DomainId domain_;
  CoreConfig config_;
  Cache* cache_;
  MemoryController* mc_;
  std::unique_ptr<InstructionStream> stream_;
  TranslateFn translate_;
  MissObserver miss_observer_;
  DomainResolver domain_resolver_;

  bool halted_ = false;
  bool fence_pending_ = false;
  bool refresh_pending_ = false;
  // Open stall intervals (counted on close or via SyncStallStats). At
  // most one can be open: a fence blocks before the op fetch, a window
  // stall happens inside a load/store with no fence pending.
  bool window_stalled_ = false;
  bool fence_stalled_ = false;
  Cycle window_stall_since_ = 0;
  Cycle fence_stall_since_ = 0;
  std::optional<CoreOp> current_op_;
  Cycle next_issue_ = 0;
  uint32_t window_ = 8;
  uint32_t outstanding_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t ops_completed_ = 0;
  std::unordered_map<uint64_t, PendingStore> pending_stores_;
  std::deque<MemRequest> stalled_writebacks_;
  StatSet stats_;

  // Interned stat handles (see common/stats.h for lifetime rules).
  Counter* c_fence_stalls_;
  Counter* c_window_stalls_;
  Counter* c_translation_faults_;
  Counter* c_flushes_;
  Counter* c_load_hits_;
  Counter* c_store_hits_;
  Counter* c_load_misses_;
  Counter* c_store_misses_;
  Counter* c_mc_backpressure_;
  Histogram* h_miss_latency_;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_CPU_CORE_H_
