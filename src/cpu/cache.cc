#include "cpu/cache.h"

#include <functional>

namespace ht {

Cache::Cache(const CacheConfig& config) : config_(config) {
  lines_.resize(static_cast<size_t>(config_.sets) * config_.ways);
  c_read_hits_ = stats_.counter("cache.read_hits");
  c_read_misses_ = stats_.counter("cache.read_misses");
  c_write_hits_ = stats_.counter("cache.write_hits");
  c_write_misses_ = stats_.counter("cache.write_misses");
  c_fills_ = stats_.counter("cache.fills");
  c_evictions_ = stats_.counter("cache.evictions");
  c_writebacks_ = stats_.counter("cache.writebacks");
  c_flushes_ = stats_.counter("cache.flushes");
}

Cache::Line* Cache::FindLine(PhysAddr addr) {
  const uint64_t set = SetOf(addr);
  const uint64_t tag = TagOf(addr);
  Line* base = &lines_[set * config_.ways];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

std::optional<uint64_t> Cache::Lookup(PhysAddr addr) {
  Line* line = FindLine(addr);
  if (line == nullptr) {
    c_read_misses_->Increment();
    return std::nullopt;
  }
  line->lru = ++lru_clock_;
  c_read_hits_->Increment();
  return line->value;
}

bool Cache::StoreHit(PhysAddr addr, uint64_t value) {
  Line* line = FindLine(addr);
  if (line == nullptr) {
    c_write_misses_->Increment();
    return false;
  }
  line->value = value;
  line->dirty = true;
  line->lru = ++lru_clock_;
  c_write_hits_->Increment();
  return true;
}

CacheAccessResult Cache::Fill(PhysAddr addr, uint64_t value, bool dirty) {
  CacheAccessResult result;
  Line* existing = FindLine(addr);
  if (existing != nullptr) {
    // Refill of a resident line (e.g. racing fills): just update.
    existing->value = value;
    existing->dirty = existing->dirty || dirty;
    existing->lru = ++lru_clock_;
    return result;
  }
  const uint64_t set = SetOf(addr);
  Line* base = &lines_[set * config_.ways];
  Line* victim = nullptr;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.locked) {
      continue;
    }
    if (victim == nullptr || line.lru < victim->lru) {
      victim = &line;
    }
  }
  if (victim == nullptr) {
    // Every way locked (possible only if max_locked_ways == ways):
    // bypass the cache entirely.
    stats_.Add("cache.fill_bypassed");
    return result;
  }
  if (victim->valid && victim->dirty) {
    result.writeback = true;
    result.writeback_addr = (victim->tag * config_.sets + set) * kLineBytes;
    result.writeback_value = victim->value;
    c_writebacks_->Increment();
  }
  if (victim->valid) {
    c_evictions_->Increment();
  }
  *victim = Line{true, dirty, false, TagOf(addr), value, ++lru_clock_};
  c_fills_->Increment();
  return result;
}

CacheAccessResult Cache::Flush(PhysAddr addr, bool privileged) {
  CacheAccessResult result;
  Line* line = FindLine(addr);
  if (line == nullptr) {
    return result;
  }
  if (line->dirty) {
    result.writeback = true;
    result.writeback_addr = addr / kLineBytes * kLineBytes;
    result.writeback_value = line->value;
    c_writebacks_->Increment();
    line->dirty = false;
  }
  if (line->locked && !privileged) {
    // Guest flush of a pinned line: coherent (written back above) but the
    // line stays resident, so it cannot be used to force ACTs.
    stats_.Add("cache.flush_denied");
    return result;
  }
  if (line->locked) {
    line->locked = false;
    --locked_lines_;
  }
  line->valid = false;
  c_flushes_->Increment();
  return result;
}

bool Cache::Lock(PhysAddr addr) {
  Line* line = FindLine(addr);
  if (line == nullptr || line->locked) {
    return line != nullptr && line->locked;
  }
  const uint64_t set = SetOf(addr);
  Line* base = &lines_[set * config_.ways];
  uint32_t locked_in_set = 0;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].locked) {
      ++locked_in_set;
    }
  }
  if (locked_in_set >= config_.max_locked_ways) {
    stats_.Add("cache.lock_rejected");
    return false;
  }
  line->locked = true;
  ++locked_lines_;
  stats_.Add("cache.locks");
  return true;
}

bool Cache::Unlock(PhysAddr addr) {
  Line* line = FindLine(addr);
  if (line == nullptr || !line->locked) {
    return false;
  }
  line->locked = false;
  --locked_lines_;
  return true;
}

void Cache::UnlockAll() {
  for (Line& line : lines_) {
    if (line.valid && line.locked) {
      line.locked = false;
    }
  }
  locked_lines_ = 0;
}

void Cache::WritebackAll(const std::function<void(PhysAddr, uint64_t)>& sink) {
  for (uint64_t set = 0; set < config_.sets; ++set) {
    Line* base = &lines_[set * config_.ways];
    for (uint32_t w = 0; w < config_.ways; ++w) {
      Line& line = base[w];
      if (line.valid && line.dirty) {
        sink((line.tag * config_.sets + set) * kLineBytes, line.value);
        line.dirty = false;
      }
    }
  }
}

}  // namespace ht
