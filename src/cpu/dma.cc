#include "cpu/dma.h"

namespace ht {

void DmaEngine::Tick(Cycle now) {
  if (done() || config_.pattern.empty() || now < next_issue_) {
    return;
  }
  MemRequest request;
  request.id = (static_cast<uint64_t>(id_) << 40) | next_seq_++;
  request.op = MemOp::kRead;
  request.addr = config_.pattern[cursor_];
  request.requestor = id_;
  request.domain = domain_;
  request.is_dma = true;
  if (!mc_->Enqueue(request, now)) {
    c_backpressure_->Increment();
    return;  // Retry next cycle without advancing.
  }
  cursor_ = (cursor_ + 1) % config_.pattern.size();
  ++issued_;
  c_requests_->Increment();
  next_issue_ = now + config_.period;
}

}  // namespace ht
