// A DMA engine: issues reads straight to the memory controller, bypassing
// the CPU caches and — critically — CPU performance counters. GuardION /
// Throwhammer-style DMA Rowhammer attacks use exactly this path, which is
// why the paper insists the ACT-management primitive must live in the MC
// rather than in core PMUs (§1: ANVIL "relies on information from
// performance counters that do not account for direct memory accesses").
#ifndef HAMMERTIME_SRC_CPU_DMA_H_
#define HAMMERTIME_SRC_CPU_DMA_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mc/controller.h"
#include "mc/request.h"

namespace ht {

struct DmaConfig {
  std::vector<PhysAddr> pattern;  // Addresses visited round-robin.
  Cycle period = 16;              // Cycles between issued requests.
  uint64_t total_requests = 0;    // 0 = unlimited.
};

class DmaEngine {
 public:
  DmaEngine(RequestorId id, DomainId domain, const DmaConfig& config, MemoryController* mc)
      : id_(id), domain_(domain), config_(config), mc_(mc) {
    c_requests_ = stats_.counter("dma.requests");
    c_backpressure_ = stats_.counter("dma.backpressure");
  }

  void Tick(Cycle now);

  // Earliest cycle >= now at which Tick could issue a request (or retry a
  // rejected one). kNeverCycle once the engine is done or has no pattern.
  Cycle NextWake(Cycle now) const {
    if (done() || config_.pattern.empty()) {
      return kNeverCycle;
    }
    return next_issue_ > now ? next_issue_ : now;
  }

  bool done() const {
    return config_.total_requests != 0 && issued_ >= config_.total_requests;
  }
  uint64_t issued() const { return issued_; }
  RequestorId id() const { return id_; }

  StatSet& stats() { return stats_; }

 private:
  RequestorId id_;
  DomainId domain_;
  DmaConfig config_;
  MemoryController* mc_;
  Cycle next_issue_ = 0;
  uint64_t issued_ = 0;
  size_t cursor_ = 0;
  uint64_t next_seq_ = 0;
  StatSet stats_;

  // Interned stat handles (see common/stats.h for lifetime rules).
  Counter* c_requests_;
  Counter* c_backpressure_;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_CPU_DMA_H_
