// Attack-based topology inference (§2.1, §4.1): using the success or
// failure of Rowhammer itself to discover DRAM-internal structure —
// subarray boundaries and row remappings — without vendor cooperation.
//
// The prober drives a scratch DramDevice directly with legal ACT/PRE
// streams (as an attacker with a quiet machine effectively does) and
// reads back which victims flipped.
#ifndef HAMMERTIME_SRC_ATTACK_INFERENCE_H_
#define HAMMERTIME_SRC_ATTACK_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "dram/config.h"

namespace ht {

struct SubarrayInference {
  // Row indices r such that rows r-1 and r showed no disturbance coupling
  // (candidate subarray boundaries).
  std::vector<uint32_t> boundaries;
  // Pairs of logically-adjacent rows with no coupling that are *not* at
  // uniform boundary positions — evidence of vendor remapping.
  std::vector<uint32_t> anomalies;
  uint64_t total_acts = 0;
  uint64_t flips_observed = 0;
};

// Hammers every row of `bank` on a scratch device built from `config` and
// reports inferred subarray boundaries. `overdrive` scales how far past
// the (unknown-to-the-attacker) MAC the prober hammers.
SubarrayInference InferSubarrayBoundaries(const DramConfig& config, uint32_t bank,
                                          double overdrive = 1.5);

}  // namespace ht

#endif  // HAMMERTIME_SRC_ATTACK_INFERENCE_H_
