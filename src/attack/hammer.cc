#include "attack/hammer.h"

namespace ht {

CoreOp HammerStream::Next() {
  if (config_.aggressors.empty() ||
      (config_.iterations != 0 && passes_ >= config_.iterations)) {
    return CoreOp::Halt();
  }
  const VirtAddr va = config_.aggressors[cursor_];
  if (config_.flush && flush_phase_) {
    flush_phase_ = false;
    ++cursor_;
    if (cursor_ >= config_.aggressors.size()) {
      cursor_ = 0;
      ++passes_;
    }
    ++ops_;
    return CoreOp::Flush(va);
  }
  if (config_.flush) {
    flush_phase_ = true;
  } else {
    ++cursor_;
    if (cursor_ >= config_.aggressors.size()) {
      cursor_ = 0;
      ++passes_;
    }
  }
  ++ops_;
  return CoreOp::Load(va);
}

bool AdaptiveHammerStream::PairIsDecoy(uint64_t pair_index) const {
  const uint64_t threshold = std::max<uint64_t>(config_.counter_threshold, 4);
  const uint64_t margin = std::min(config_.safety_margin, threshold / 4);
  const uint64_t prologue = threshold - margin;
  if (pair_index < prologue) {
    return true;  // Alignment prologue: pure decoys.
  }
  // Steady state: cycles of exactly `threshold` pairs, decoys first.
  const uint64_t position = (pair_index - prologue) % threshold;
  return position < 2 * margin;
}

CoreOp AdaptiveHammerStream::Next() {
  if (config_.aggressors.empty() || config_.decoys.empty()) {
    return CoreOp::Halt();
  }
  if (config_.iterations != 0 && total_ops_ >= config_.iterations) {
    return CoreOp::Halt();
  }
  ++total_ops_;

  // Each load+flush pair produces ~1 ACT, so pair index tracks the
  // channel ACT counter (no other counted ACT sources while attacking).
  const auto& set = PairIsDecoy(pair_index_) ? config_.decoys : config_.aggressors;
  const VirtAddr va = set[pair_index_ % set.size()];
  if (flush_phase_) {
    flush_phase_ = false;
    ++pair_index_;
    return CoreOp::Flush(va);
  }
  flush_phase_ = true;
  return CoreOp::Load(va);
}

}  // namespace ht
