#include "attack/pattern.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/rng.h"

namespace ht {
namespace {

bool PatternFail(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what;
  }
  return false;
}

// 2^k for the largest k with 2^k <= cap (cap >= 1).
uint32_t FloorLog2(uint32_t cap) {
  uint32_t log = 0;
  while ((1u << (log + 1)) <= cap) {
    ++log;
  }
  return log;
}

}  // namespace

bool HammeringPattern::Validate(std::string* error) const {
  if (slots_per_frame == 0 || frames == 0) {
    return PatternFail(error, "pattern has zero geometry");
  }
  if (sets.empty()) {
    return PatternFail(error, "pattern has no aggressor sets");
  }
  std::vector<uint8_t> busy(total_slots(), 0);
  for (size_t i = 0; i < sets.size(); ++i) {
    const AggressorSet& set = sets[i];
    const std::string where = "set " + std::to_string(i);
    if (set.aggressors.empty()) {
      return PatternFail(error, where + " has no aggressors");
    }
    if (set.amplitude == 0) {
      return PatternFail(error, where + " has zero amplitude");
    }
    if (set.period_frames == 0 || set.period_frames > frames ||
        frames % set.period_frames != 0) {
      return PatternFail(error, where + " period does not divide the pattern frames");
    }
    if (set.start_frame >= set.period_frames) {
      return PatternFail(error, where + " start_frame is not below its period");
    }
    if (set.phase_slot + set.width() > slots_per_frame) {
      return PatternFail(error, where + " does not fit inside a frame");
    }
    for (const uint32_t id : set.aggressors) {
      if (id >= num_aggressors) {
        return PatternFail(error, where + " references aggressor id out of range");
      }
    }
    for (uint32_t frame = set.start_frame; frame < frames; frame += set.period_frames) {
      const uint32_t base = frame * slots_per_frame + set.phase_slot;
      for (uint32_t j = 0; j < set.width(); ++j) {
        if (busy[base + j]) {
          return PatternFail(error, where + " overlaps another set at slot " +
                                        std::to_string(base + j));
        }
        busy[base + j] = 1;
      }
    }
  }
  return true;
}

std::vector<int32_t> HammeringPattern::Materialize() const {
  std::vector<int32_t> schedule(total_slots(), kFillerSlot);
  for (const AggressorSet& set : sets) {
    const uint32_t tuple = static_cast<uint32_t>(set.aggressors.size());
    for (uint32_t frame = set.start_frame; frame < frames; frame += set.period_frames) {
      const uint32_t base = frame * slots_per_frame + set.phase_slot;
      for (uint32_t j = 0; j < set.width(); ++j) {
        schedule[base + j] = static_cast<int32_t>(set.aggressors[j % tuple]);
      }
    }
  }
  return schedule;
}

PatternParams PatternParamsFor(const DramConfig& dram) {
  PatternParams params;
  const Cycle ref_period = dram.RefPeriod();
  const Cycle slot_cost = std::max<Cycle>(1, dram.timing.tRC);
  params.slots_per_frame = static_cast<uint32_t>(
      std::clamp<Cycle>(ref_period / slot_cost, 16, 256));
  return params;
}

PatternBuilder::PatternBuilder(const PatternParams& params) : params_(params) {}

HammeringPattern PatternBuilder::Build(uint64_t seed) const {
  HammeringPattern pattern;
  pattern.seed = seed;
  pattern.slots_per_frame = std::max(4u, params_.slots_per_frame);
  pattern.num_fillers = params_.num_fillers;
  Rng rng(seed ^ 0x9A77E12Full);

  const uint32_t frames_log = 1 + rng.NextBelow(FloorLog2(std::max(2u, params_.max_frames)));
  pattern.frames = 1u << frames_log;

  const uint32_t max_aggressors = std::max(2u, params_.max_aggressors);
  const uint32_t max_sets = std::max(2u, params_.max_sets);
  const uint32_t target_sets = 2 + static_cast<uint32_t>(rng.NextBelow(max_sets - 1));

  std::vector<uint8_t> busy(pattern.total_slots(), 0);
  const auto occurrences_free = [&](const AggressorSet& set) {
    for (uint32_t frame = set.start_frame; frame < pattern.frames;
         frame += set.period_frames) {
      const uint32_t base = frame * pattern.slots_per_frame + set.phase_slot;
      for (uint32_t j = 0; j < set.width(); ++j) {
        if (busy[base + j]) {
          return false;
        }
      }
    }
    return true;
  };
  const auto claim = [&](const AggressorSet& set) {
    for (uint32_t frame = set.start_frame; frame < pattern.frames;
         frame += set.period_frames) {
      const uint32_t base = frame * pattern.slots_per_frame + set.phase_slot;
      for (uint32_t j = 0; j < set.width(); ++j) {
        busy[base + j] = 1;
      }
    }
  };

  uint32_t next_id = 0;
  for (uint32_t s = 0; s < target_sets; ++s) {
    AggressorSet set;
    // Frequency domain: period is a power of two dividing `frames`, phase
    // (start_frame) anywhere inside one period, amplitude 1..3.
    set.period_frames = 1u << rng.NextBelow(frames_log + 1);
    set.start_frame = static_cast<uint32_t>(rng.NextBelow(set.period_frames));
    const uint32_t tuple = 2u * (1u + static_cast<uint32_t>(rng.NextBelow(2)));
    set.amplitude = 1 + static_cast<uint32_t>(rng.NextBelow(3));
    if (next_id + tuple > max_aggressors) {
      break;  // Aggressor-row budget exhausted; the pattern is complete.
    }
    while (set.amplitude > 1 && set.amplitude * tuple > pattern.slots_per_frame) {
      --set.amplitude;
    }
    if (tuple > pattern.slots_per_frame) {
      break;
    }
    for (uint32_t j = 0; j < tuple; ++j) {
      set.aggressors.push_back(next_id + j);
    }
    const uint32_t span = pattern.slots_per_frame - set.width() + 1;
    bool placed = false;
    for (uint32_t attempt = 0; attempt < 8 && !placed; ++attempt) {
      set.phase_slot = static_cast<uint32_t>(rng.NextBelow(span));
      placed = occurrences_free(set);
    }
    if (!placed) {
      continue;  // Crowded frame; drop this set, keep drawing others.
    }
    claim(set);
    next_id += tuple;
    pattern.sets.push_back(std::move(set));
  }

  if (pattern.sets.empty()) {
    // Degenerate draw (everything collided or frames are tiny): fall back
    // to a classic every-frame pair — nothing is placed yet, so it fits.
    AggressorSet set;
    set.period_frames = 1;
    set.start_frame = 0;
    set.phase_slot = 0;
    set.amplitude = 1;
    set.aggressors = {0, 1};
    pattern.sets.push_back(std::move(set));
    next_id = 2;
  }
  pattern.num_aggressors = next_id;
  return pattern;
}

HammeringPattern BuildScenarioPattern(const DramConfig& dram, uint64_t pattern_seed) {
  return PatternBuilder(PatternParamsFor(dram)).Build(pattern_seed);
}

PatternHammerStream::PatternHammerStream(PatternStreamConfig config)
    : config_(std::move(config)) {
  const HammeringPattern& pattern = config_.pattern;
  uint64_t filler_ordinal = 0;
  for (int32_t id : pattern.Materialize()) {
    if (id == kFillerSlot) {
      if (pattern.num_fillers == 0) {
        continue;  // No filler rows: unclaimed slots emit nothing.
      }
      id = static_cast<int32_t>(pattern.num_aggressors + filler_ordinal % pattern.num_fillers);
      ++filler_ordinal;
    }
    if (static_cast<size_t>(id) < config_.vas.size()) {
      period_vas_.push_back(config_.vas[static_cast<size_t>(id)]);
    }
  }
}

CoreOp PatternHammerStream::Next() {
  if (period_vas_.empty() ||
      (config_.iterations != 0 && periods_ >= config_.iterations)) {
    return CoreOp::Halt();
  }
  const VirtAddr va = period_vas_[cursor_];
  if (!flush_phase_) {
    flush_phase_ = true;
    ++accesses_;
    return CoreOp::Load(va);
  }
  flush_phase_ = false;
  if (++cursor_ == period_vas_.size()) {
    cursor_ = 0;
    ++periods_;
  }
  return CoreOp::Flush(va);
}

}  // namespace ht
