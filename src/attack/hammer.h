// Rowhammer attack instruction streams.
//
// The canonical access pattern (§2.1): alternate cached reads of aggressor
// rows in one bank, flushing each line after use so every read misses the
// LLC and forces a row-buffer conflict — hence an ACT — in DRAM.
//
// HammerStream covers single-sided (1 aggressor + conflict row),
// double-sided (2 aggressors sandwiching a victim), and many-sided /
// TRRespass-style (n aggressors to overflow the TRR tracker, §3).
// AdaptiveHammerStream models the §4.2 evasion attacker that synchronizes
// with a deterministic ACT-counter threshold, steering every overflow
// interrupt onto decoy rows.
#ifndef HAMMERTIME_SRC_ATTACK_HAMMER_H_
#define HAMMERTIME_SRC_ATTACK_HAMMER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/core_ops.h"

namespace ht {

struct HammerConfig {
  std::vector<VirtAddr> aggressors;  // Line VAs, one per aggressor row.
  uint64_t iterations = 0;           // Full passes over the set; 0 = endless.
  bool flush = true;                 // clflush after each load (needed to ACT).
};

class HammerStream : public InstructionStream {
 public:
  explicit HammerStream(const HammerConfig& config) : config_(config) {}

  CoreOp Next() override;
  // Loads to distinct aggressor rows are independent.
  uint32_t IlpHint() const override {
    return static_cast<uint32_t>(std::max<size_t>(1, config_.aggressors.size()));
  }

  uint64_t hammer_ops() const { return ops_; }

 private:
  HammerConfig config_;
  size_t cursor_ = 0;
  bool flush_phase_ = false;
  uint64_t passes_ = 0;
  uint64_t ops_ = 0;
};

struct AdaptiveHammerConfig {
  std::vector<VirtAddr> aggressors;
  std::vector<VirtAddr> decoys;      // Rows the attacker sacrifices to the
                                     // interrupt (must be harmless to it).
  uint64_t counter_threshold = 512;  // The ACT-counter threshold (known or
                                     // guessed by the attacker).
  uint64_t safety_margin = 32;       // Half-width of the decoy window.
  uint64_t iterations = 0;           // Total load/flush ops; 0 = endless.
};

// Phase-locks its access pattern to the (deterministic) counter period:
// after a prologue of (threshold - margin) decoy pairs, it repeats a
// cycle of exactly `threshold` pairs — 2*margin decoys followed by
// (threshold - 2*margin) aggressor pairs — so every overflow lands in the
// middle of the decoy window and the interrupt reports a decoy address.
// Randomized counter resets (§4.2) break the phase lock.
class AdaptiveHammerStream : public InstructionStream {
 public:
  explicit AdaptiveHammerStream(const AdaptiveHammerConfig& config) : config_(config) {}

  CoreOp Next() override;
  // Serialized on purpose: overlapping a load with the previous flush can
  // turn it into a cache hit (no ACT), breaking the attacker's ACT-count
  // phase lock. Real evasion code fences between pairs for the same reason.
  uint32_t IlpHint() const override { return 1; }

 private:
  // Which set the pair at cycle position `pair_index` draws from.
  bool PairIsDecoy(uint64_t pair_index) const;

  AdaptiveHammerConfig config_;
  uint64_t pair_index_ = 0;  // Monotonic load+flush pair counter.
  bool flush_phase_ = false;
  uint64_t total_ops_ = 0;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_ATTACK_HAMMER_H_
