// Attack planning: how an attacker with address-mapping knowledge (§2.1,
// [11]) turns its own allocated pages into aggressor row sets.
//
// The attacker only controls its own domain's memory; the planner scans
// the attacker's page mappings, groups lines by (channel, rank, bank),
// and selects aggressor rows — optionally sandwiching a specific victim
// domain's row for double-sided hammering.
#ifndef HAMMERTIME_SRC_ATTACK_PLANNER_H_
#define HAMMERTIME_SRC_ATTACK_PLANNER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "os/kernel.h"

namespace ht {

struct HammerPlan {
  std::vector<VirtAddr> aggressor_vas;    // One line VA per aggressor row.
  std::vector<PhysAddr> aggressor_addrs;  // Matching physical line addrs.
  std::vector<uint32_t> aggressor_rows;   // Logical row indices.
  uint32_t channel = 0;
  uint32_t rank = 0;
  uint32_t bank = 0;
};

// Picks `sides` aggressor rows owned by `attacker` in one bank, spaced
// `spacing` rows apart where possible (spacing 2 leaves a victim row
// between each pair). Returns nullopt if the attacker cannot muster
// `sides` distinct rows in any bank. `avoid` excludes a (channel, rank,
// bank) triple — used e.g. to pick decoy rows away from the real attack
// bank (§4.2 evasion experiments).
struct BankTriple {
  uint32_t channel = 0;
  uint32_t rank = 0;
  uint32_t bank = 0;
};
std::optional<HammerPlan> PlanManySided(HostKernel& kernel, DomainId attacker, uint32_t sides,
                                        uint32_t spacing = 2,
                                        std::optional<BankTriple> avoid = std::nullopt);

// Finds a victim row owned by `victim` whose logical neighbours (row-1,
// row+1) are both owned by `attacker`, for classic double-sided
// hammering. Returns nullopt when no such sandwich exists — which is
// itself the success signal for isolation-centric defenses.
std::optional<HammerPlan> PlanDoubleSidedCross(HostKernel& kernel, DomainId attacker,
                                               DomainId victim);

// Half-Double-style plan: aggressors at *distance two* from the victim
// (rows r-2 and r+2 around a victim-owned row r). With blast radius >= 2
// the victim still accumulates disturbance at half weight, and defenses
// that only refresh distance-1 neighbours miss it entirely — the attack
// class that motivates the paper's blast-radius argument for
// REF_NEIGHBORS (§4.3).
std::optional<HammerPlan> PlanHalfDoubleCross(HostKernel& kernel, DomainId attacker,
                                              DomainId victim);

// Rows within `blast` of any aggressor in the plan (the potential victims).
std::vector<uint32_t> VictimRowsOf(const HammerPlan& plan, uint32_t blast, uint32_t rows_per_bank);

// Whether any row owned by `attacker` lies within `blast` rows (same bank
// and, when the mapping isolates them, same subarray is NOT considered —
// this is pure logical adjacency) of a row holding another domain's data.
// The ground-truth exposure metric for isolation policies.
bool HasCrossDomainAdjacency(HostKernel& kernel, DomainId attacker, uint32_t blast);

}  // namespace ht

#endif  // HAMMERTIME_SRC_ATTACK_PLANNER_H_
