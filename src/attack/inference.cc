#include "attack/inference.h"

#include <algorithm>
#include <set>

#include "dram/device.h"

namespace ht {

SubarrayInference InferSubarrayBoundaries(const DramConfig& config, uint32_t bank,
                                          double overdrive) {
  // A private device: the attacker's model of "a quiet machine". TRR off —
  // the prober hammers one row at a time, which even real TRR would
  // service; disabling it keeps the probe readout clean.
  DramConfig probe_config = config;
  probe_config.trr.enabled = false;
  DramDevice device(probe_config, /*channel_index=*/0);

  SubarrayInference result;
  const uint32_t rows = config.org.rows_per_bank();
  const uint64_t acts_per_row =
      static_cast<uint64_t>(static_cast<double>(config.disturbance.mac) * overdrive) + 2;

  Cycle now = 0;
  size_t flip_cursor = 0;
  // adjacency[r] = true when hammering some row disturbed across the
  // (r-1, r) logical edge.
  std::vector<bool> coupled(rows, false);

  for (uint32_t aggressor = 0; aggressor < rows; ++aggressor) {
    for (uint64_t i = 0; i < acts_per_row; ++i) {
      const DdrCommand act = DdrCommand::Act(0, bank, aggressor);
      now = std::max(now + 1, device.EarliestCycle(act));
      device.Issue(act, now);
      const DdrCommand pre = DdrCommand::Pre(0, bank);
      now = std::max(now + 1, device.EarliestCycle(pre));
      device.Issue(pre, now);
      result.total_acts += 1;
    }
    // Read out new flips: which logical victims coupled to this aggressor?
    const auto& flips = device.flip_records();
    for (; flip_cursor < flips.size(); ++flip_cursor) {
      const FlipRecord& flip = flips[flip_cursor];
      ++result.flips_observed;
      const uint32_t lo = std::min(flip.victim_row, flip.aggressor_row);
      const uint32_t hi = std::max(flip.victim_row, flip.aggressor_row);
      // Only direct logical adjacency marks an edge: a flip whose logical
      // span is wider is evidence of remapping, not of coupling across
      // every intermediate edge.
      if (hi == lo + 1 && hi < rows) {
        coupled[hi] = true;
      }
    }
  }

  // Boundaries: uncoupled logical edges. With remapping, a remapped row
  // shows uncoupled edges at non-uniform positions — report separately.
  for (uint32_t r = 1; r < rows; ++r) {
    if (!coupled[r]) {
      if (r % config.org.rows_per_subarray == 0) {
        result.boundaries.push_back(r);
      } else {
        result.anomalies.push_back(r);
      }
    }
  }
  return result;
}

}  // namespace ht
