// Frequency-domain hammering patterns (Blacksmith-style synthesis).
//
// Uniform patterns (double-sided, many-sided) lose to sampling TRR
// trackers because every aggressor shows the same access frequency: the
// tracker's hot-row estimates converge on exactly the rows being
// hammered. The strongest in-the-wild TRR bypasses are instead
// *non-uniform*: aggressor sets are placed in the frequency domain —
// each set recurs with its own frequency, phase, and amplitude inside a
// tREFI-aligned frame — so the tracker's view of "hot" is split across
// sets that take turns while the victim's disturbance keeps accumulating.
//
// `HammeringPattern` is the frame representation, `PatternBuilder` is the
// deterministic seed-driven generator (the campaign fuzzer's search
// space), and `PatternHammerStream` emits the schedule through the same
// load+flush idiom as HammerStream. The naive reference expansion lives
// in src/check/pattern_ref.h and must agree with Materialize() — two
// independent algorithms over the same representation (the differential
// pattern oracle).
#ifndef HAMMERTIME_SRC_ATTACK_PATTERN_H_
#define HAMMERTIME_SRC_ATTACK_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core_ops.h"
#include "dram/config.h"

namespace ht {

// Schedule value for a slot no aggressor set claims (filler traffic).
inline constexpr int32_t kFillerSlot = -1;

// One aggressor set placed in the frequency domain. The set occurs in
// frames start_frame, start_frame + period_frames, ... (< frames); each
// occurrence writes the aggressor tuple `amplitude` times back to back,
// occupying slots [phase_slot, phase_slot + width()) of that frame.
struct AggressorSet {
  uint32_t start_frame = 0;    // Phase, in frames (< period_frames).
  uint32_t period_frames = 1;  // 1/frequency; must divide the pattern's frames.
  uint32_t phase_slot = 0;     // First slot inside each occupied frame.
  uint32_t amplitude = 1;      // Back-to-back tuple repeats per occurrence.
  std::vector<uint32_t> aggressors;  // Aggressor ids, hammered in tuple order.

  uint32_t width() const {
    return amplitude * static_cast<uint32_t>(aggressors.size());
  }
};

// A periodic access schedule aligned to refresh-interval frames: `frames`
// frames of `slots_per_frame` slots each make one period, which the
// stream repeats. Slot = one load+flush pair (~one ACT, sized so a frame
// of slots fits in one REF-to-REF interval). Ids 0..num_aggressors-1 are
// aggressor rows; ids num_aggressors..num_aggressors+num_fillers-1 are
// filler rows that occupy unclaimed slots (round-robin in slot order) to
// keep ACT pressure — and tracker churn — continuous.
struct HammeringPattern {
  uint32_t slots_per_frame = 64;
  uint32_t frames = 4;         // Frames per period.
  uint32_t num_aggressors = 0;
  uint32_t num_fillers = 0;
  uint64_t seed = 0;           // Builder seed (0 for hand-built patterns).
  std::vector<AggressorSet> sets;

  uint32_t total_slots() const { return slots_per_frame * frames; }
  uint32_t total_ids() const { return num_aggressors + num_fillers; }

  // Structural checks: nonzero geometry, every set's period divides
  // `frames` with start_frame < period_frames, tuples fit their frame,
  // ids in range, and no two occurrences claim the same slot.
  bool Validate(std::string* error = nullptr) const;

  // One period's slot -> aggressor id schedule (kFillerSlot where no set
  // claims the slot). Iterates set occurrences — the reference expander
  // in src/check/pattern_ref.h derives the same schedule per slot via
  // modular arithmetic instead. Precondition: Validate() holds.
  std::vector<int32_t> Materialize() const;
};

// Generator envelope: geometry and search-space caps, derived from the
// DRAM profile so frames stay tREFI-aligned under any timing.
struct PatternParams {
  uint32_t slots_per_frame = 64;  // ~ RefPeriod / tRC (one ACT per slot).
  uint32_t max_frames = 8;        // Period cap, in frames (power of two).
  uint32_t max_sets = 6;          // Aggressor sets attempted per pattern.
  uint32_t max_aggressors = 10;   // Distinct aggressor rows (>= 2).
  uint32_t num_fillers = 2;       // Filler rows for unclaimed slots.
};

// Sizes a frame to the profile's REF cadence: one slot per tRC (the
// fastest same-bank ACT rate), clamped to keep schedules small.
PatternParams PatternParamsFor(const DramConfig& dram);

// Deterministic pattern generator: Build(seed) is a pure function of
// (params, seed) — same seed, same pattern, byte for byte — which is what
// makes campaign cells cacheable and seed lines replayable.
class PatternBuilder {
 public:
  explicit PatternBuilder(const PatternParams& params = {});

  HammeringPattern Build(uint64_t seed) const;

 private:
  PatternParams params_;
};

// The one pattern a ScenarioSpec{attack=kPattern, pattern_seed} runs:
// builder params from the spec's DRAM profile, pattern from the seed.
// Shared by the scenario runner, the campaign report (pattern summaries),
// and the tests so they can never disagree on what a seed means.
HammeringPattern BuildScenarioPattern(const DramConfig& dram, uint64_t pattern_seed);

struct PatternStreamConfig {
  HammeringPattern pattern;
  // id -> line VA, one per id; size >= pattern.total_ids(). Aggressor ids
  // first, filler ids after (the planner hands out one bank's rows).
  std::vector<VirtAddr> vas;
  uint64_t iterations = 0;  // Full periods to emit; 0 = endless.
};

// Emits the materialized schedule as load+flush pairs (the canonical
// ACT-forcing idiom, as HammerStream). Unclaimed slots become filler
// accesses when the pattern has fillers and are skipped otherwise.
class PatternHammerStream : public InstructionStream {
 public:
  explicit PatternHammerStream(PatternStreamConfig config);

  CoreOp Next() override;
  // Modest overlap: enough MLP to keep the bank busy without letting the
  // core reorder far enough to smear the frame alignment.
  uint32_t IlpHint() const override { return 4; }

  uint64_t accesses() const { return accesses_; }
  const std::vector<VirtAddr>& period_vas() const { return period_vas_; }

 private:
  PatternStreamConfig config_;
  std::vector<VirtAddr> period_vas_;  // One period, fillers resolved.
  size_t cursor_ = 0;
  bool flush_phase_ = false;
  uint64_t periods_ = 0;
  uint64_t accesses_ = 0;
};

}  // namespace ht

#endif  // HAMMERTIME_SRC_ATTACK_PATTERN_H_
