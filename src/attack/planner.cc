#include "attack/planner.h"

#include <algorithm>
#include <map>

namespace ht {
namespace {

struct BankKey {
  uint32_t channel;
  uint32_t rank;
  uint32_t bank;
  auto operator<=>(const BankKey&) const = default;
};

// One representative line VA per (bank, row) owned by the domain.
std::map<BankKey, std::map<uint32_t, VirtAddr>> GroupRows(HostKernel& kernel, DomainId domain) {
  std::map<BankKey, std::map<uint32_t, VirtAddr>> groups;
  const AddressMapper& mapper = kernel.mc().mapper();
  for (const auto& [va_page, frame] : kernel.space(domain).pages()) {
    for (uint64_t l = 0; l < kLinesPerPage; ++l) {
      const PhysAddr pa = frame * kPageBytes + l * kLineBytes;
      const DdrCoord coord = mapper.Map(pa);
      const BankKey key{coord.channel, coord.rank, coord.bank};
      groups[key].try_emplace(coord.row, va_page * kPageBytes + l * kLineBytes);
    }
  }
  return groups;
}

}  // namespace

std::optional<HammerPlan> PlanManySided(HostKernel& kernel, DomainId attacker, uint32_t sides,
                                        uint32_t spacing, std::optional<BankTriple> avoid) {
  auto groups = GroupRows(kernel, attacker);
  const BankKey* best_key = nullptr;
  const std::map<uint32_t, VirtAddr>* best_rows = nullptr;
  for (const auto& [key, rows] : groups) {
    if (avoid.has_value() && key.channel == avoid->channel && key.rank == avoid->rank &&
        key.bank == avoid->bank) {
      continue;
    }
    if (best_rows == nullptr || rows.size() > best_rows->size()) {
      best_key = &key;
      best_rows = &rows;
    }
  }
  if (best_rows == nullptr || best_rows->size() < sides) {
    return std::nullopt;
  }

  HammerPlan plan;
  plan.channel = best_key->channel;
  plan.rank = best_key->rank;
  plan.bank = best_key->bank;

  // Prefer rows spaced exactly `spacing` apart (victims in the gaps).
  std::vector<std::pair<uint32_t, VirtAddr>> rows(best_rows->begin(), best_rows->end());
  uint32_t last_row = 0;
  bool have_last = false;
  for (const auto& [row, va] : rows) {
    if (plan.aggressor_rows.size() >= sides) {
      break;
    }
    if (!have_last || row >= last_row + spacing) {
      plan.aggressor_rows.push_back(row);
      plan.aggressor_vas.push_back(va);
      last_row = row;
      have_last = true;
    }
  }
  // Relax spacing if the region was too fragmented.
  if (plan.aggressor_rows.size() < sides) {
    plan.aggressor_rows.clear();
    plan.aggressor_vas.clear();
    for (const auto& [row, va] : rows) {
      if (plan.aggressor_rows.size() >= sides) {
        break;
      }
      plan.aggressor_rows.push_back(row);
      plan.aggressor_vas.push_back(va);
    }
  }
  if (plan.aggressor_rows.size() < sides) {
    return std::nullopt;
  }
  for (VirtAddr va : plan.aggressor_vas) {
    plan.aggressor_addrs.push_back(*kernel.Translate(attacker, va));
  }
  return plan;
}

std::optional<HammerPlan> PlanDoubleSidedCross(HostKernel& kernel, DomainId attacker,
                                               DomainId victim) {
  auto groups = GroupRows(kernel, attacker);
  for (const auto& [key, rows] : groups) {
    for (const auto& [row, va] : rows) {
      auto above = rows.find(row + 2);
      if (above == rows.end()) {
        continue;
      }
      // Middle row must hold victim data.
      const auto owners = kernel.RowOwners(key.channel, key.rank, key.bank, row + 1);
      if (std::find(owners.begin(), owners.end(), victim) == owners.end()) {
        continue;
      }
      HammerPlan plan;
      plan.channel = key.channel;
      plan.rank = key.rank;
      plan.bank = key.bank;
      plan.aggressor_rows = {row, row + 2};
      plan.aggressor_vas = {va, above->second};
      for (VirtAddr aggressor_va : plan.aggressor_vas) {
        plan.aggressor_addrs.push_back(*kernel.Translate(attacker, aggressor_va));
      }
      return plan;
    }
  }
  return std::nullopt;
}

std::optional<HammerPlan> PlanHalfDoubleCross(HostKernel& kernel, DomainId attacker,
                                              DomainId victim) {
  auto groups = GroupRows(kernel, attacker);
  const DramOrg& org = kernel.mc().mapper().org();
  for (const auto& [key, rows] : groups) {
    for (const auto& [row, va] : rows) {
      auto above = rows.find(row + 4);
      if (above == rows.end()) {
        continue;
      }
      const uint32_t victim_row = row + 2;
      // Whole pattern must sit in one subarray or the coupling is cut.
      if (org.SubarrayOfRow(row) != org.SubarrayOfRow(row + 4)) {
        continue;
      }
      const auto owners = kernel.RowOwners(key.channel, key.rank, key.bank, victim_row);
      if (std::find(owners.begin(), owners.end(), victim) == owners.end()) {
        continue;
      }
      HammerPlan plan;
      plan.channel = key.channel;
      plan.rank = key.rank;
      plan.bank = key.bank;
      plan.aggressor_rows = {row, row + 4};
      plan.aggressor_vas = {va, above->second};
      for (VirtAddr aggressor_va : plan.aggressor_vas) {
        plan.aggressor_addrs.push_back(*kernel.Translate(attacker, aggressor_va));
      }
      return plan;
    }
  }
  return std::nullopt;
}

std::vector<uint32_t> VictimRowsOf(const HammerPlan& plan, uint32_t blast,
                                   uint32_t rows_per_bank) {
  std::vector<uint32_t> victims;
  for (uint32_t aggressor : plan.aggressor_rows) {
    for (uint32_t d = 1; d <= blast; ++d) {
      if (aggressor >= d) {
        victims.push_back(aggressor - d);
      }
      if (aggressor + d < rows_per_bank) {
        victims.push_back(aggressor + d);
      }
    }
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  // Aggressors repair themselves; drop rows that are also aggressors.
  std::erase_if(victims, [&plan](uint32_t row) {
    return std::find(plan.aggressor_rows.begin(), plan.aggressor_rows.end(), row) !=
           plan.aggressor_rows.end();
  });
  return victims;
}

bool HasCrossDomainAdjacency(HostKernel& kernel, DomainId attacker, uint32_t blast) {
  const DramOrg& org = kernel.mc().mapper().org();
  auto groups = GroupRows(kernel, attacker);
  for (const auto& [key, rows] : groups) {
    for (const auto& [row, va] : rows) {
      (void)va;
      const uint32_t subarray = org.SubarrayOfRow(row);
      for (uint32_t d = 1; d <= blast; ++d) {
        for (int sign = -1; sign <= 1; sign += 2) {
          const int64_t neighbor = static_cast<int64_t>(row) + sign * static_cast<int64_t>(d);
          if (neighbor < 0 || neighbor >= static_cast<int64_t>(org.rows_per_bank())) {
            continue;
          }
          // Disturbance cannot cross a subarray boundary; adjacency across
          // one is not an exposure.
          if (org.SubarrayOfRow(static_cast<uint32_t>(neighbor)) != subarray) {
            continue;
          }
          for (DomainId owner : kernel.RowOwners(key.channel, key.rank, key.bank,
                                                 static_cast<uint32_t>(neighbor))) {
            if (owner != attacker) {
              return true;
            }
          }
        }
      }
    }
  }
  return false;
}

}  // namespace ht
