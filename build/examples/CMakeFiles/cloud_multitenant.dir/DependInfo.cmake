
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cloud_multitenant.cpp" "examples/CMakeFiles/cloud_multitenant.dir/cloud_multitenant.cpp.o" "gcc" "examples/CMakeFiles/cloud_multitenant.dir/cloud_multitenant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ht_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/ht_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ht_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ht_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ht_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ht_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ht_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
