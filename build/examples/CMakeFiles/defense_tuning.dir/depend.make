# Empty dependencies file for defense_tuning.
# This may be replaced when dependencies are built.
