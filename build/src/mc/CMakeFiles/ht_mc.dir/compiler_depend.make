# Empty compiler generated dependencies file for ht_mc.
# This may be replaced when dependencies are built.
