file(REMOVE_RECURSE
  "CMakeFiles/ht_mc.dir/act_counter.cc.o"
  "CMakeFiles/ht_mc.dir/act_counter.cc.o.d"
  "CMakeFiles/ht_mc.dir/addrmap.cc.o"
  "CMakeFiles/ht_mc.dir/addrmap.cc.o.d"
  "CMakeFiles/ht_mc.dir/controller.cc.o"
  "CMakeFiles/ht_mc.dir/controller.cc.o.d"
  "CMakeFiles/ht_mc.dir/mitigations.cc.o"
  "CMakeFiles/ht_mc.dir/mitigations.cc.o.d"
  "libht_mc.a"
  "libht_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
