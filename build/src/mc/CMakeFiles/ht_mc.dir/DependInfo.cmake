
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/act_counter.cc" "src/mc/CMakeFiles/ht_mc.dir/act_counter.cc.o" "gcc" "src/mc/CMakeFiles/ht_mc.dir/act_counter.cc.o.d"
  "/root/repo/src/mc/addrmap.cc" "src/mc/CMakeFiles/ht_mc.dir/addrmap.cc.o" "gcc" "src/mc/CMakeFiles/ht_mc.dir/addrmap.cc.o.d"
  "/root/repo/src/mc/controller.cc" "src/mc/CMakeFiles/ht_mc.dir/controller.cc.o" "gcc" "src/mc/CMakeFiles/ht_mc.dir/controller.cc.o.d"
  "/root/repo/src/mc/mitigations.cc" "src/mc/CMakeFiles/ht_mc.dir/mitigations.cc.o" "gcc" "src/mc/CMakeFiles/ht_mc.dir/mitigations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/ht_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
