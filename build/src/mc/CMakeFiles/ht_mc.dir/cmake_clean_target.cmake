file(REMOVE_RECURSE
  "libht_mc.a"
)
