file(REMOVE_RECURSE
  "CMakeFiles/ht_common.dir/log.cc.o"
  "CMakeFiles/ht_common.dir/log.cc.o.d"
  "CMakeFiles/ht_common.dir/rng.cc.o"
  "CMakeFiles/ht_common.dir/rng.cc.o.d"
  "CMakeFiles/ht_common.dir/stats.cc.o"
  "CMakeFiles/ht_common.dir/stats.cc.o.d"
  "CMakeFiles/ht_common.dir/table.cc.o"
  "CMakeFiles/ht_common.dir/table.cc.o.d"
  "libht_common.a"
  "libht_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
