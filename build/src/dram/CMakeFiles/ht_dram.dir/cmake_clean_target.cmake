file(REMOVE_RECURSE
  "libht_dram.a"
)
