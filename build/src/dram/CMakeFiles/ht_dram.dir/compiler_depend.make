# Empty compiler generated dependencies file for ht_dram.
# This may be replaced when dependencies are built.
