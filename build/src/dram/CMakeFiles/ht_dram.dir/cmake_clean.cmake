file(REMOVE_RECURSE
  "CMakeFiles/ht_dram.dir/command.cc.o"
  "CMakeFiles/ht_dram.dir/command.cc.o.d"
  "CMakeFiles/ht_dram.dir/config.cc.o"
  "CMakeFiles/ht_dram.dir/config.cc.o.d"
  "CMakeFiles/ht_dram.dir/data_store.cc.o"
  "CMakeFiles/ht_dram.dir/data_store.cc.o.d"
  "CMakeFiles/ht_dram.dir/device.cc.o"
  "CMakeFiles/ht_dram.dir/device.cc.o.d"
  "CMakeFiles/ht_dram.dir/disturbance.cc.o"
  "CMakeFiles/ht_dram.dir/disturbance.cc.o.d"
  "CMakeFiles/ht_dram.dir/remap.cc.o"
  "CMakeFiles/ht_dram.dir/remap.cc.o.d"
  "CMakeFiles/ht_dram.dir/timing.cc.o"
  "CMakeFiles/ht_dram.dir/timing.cc.o.d"
  "CMakeFiles/ht_dram.dir/trr.cc.o"
  "CMakeFiles/ht_dram.dir/trr.cc.o.d"
  "libht_dram.a"
  "libht_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
