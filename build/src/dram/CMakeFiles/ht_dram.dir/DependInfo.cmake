
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/command.cc" "src/dram/CMakeFiles/ht_dram.dir/command.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/command.cc.o.d"
  "/root/repo/src/dram/config.cc" "src/dram/CMakeFiles/ht_dram.dir/config.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/config.cc.o.d"
  "/root/repo/src/dram/data_store.cc" "src/dram/CMakeFiles/ht_dram.dir/data_store.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/data_store.cc.o.d"
  "/root/repo/src/dram/device.cc" "src/dram/CMakeFiles/ht_dram.dir/device.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/device.cc.o.d"
  "/root/repo/src/dram/disturbance.cc" "src/dram/CMakeFiles/ht_dram.dir/disturbance.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/disturbance.cc.o.d"
  "/root/repo/src/dram/remap.cc" "src/dram/CMakeFiles/ht_dram.dir/remap.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/remap.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/dram/CMakeFiles/ht_dram.dir/timing.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/timing.cc.o.d"
  "/root/repo/src/dram/trr.cc" "src/dram/CMakeFiles/ht_dram.dir/trr.cc.o" "gcc" "src/dram/CMakeFiles/ht_dram.dir/trr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
