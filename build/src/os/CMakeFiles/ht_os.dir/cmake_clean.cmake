file(REMOVE_RECURSE
  "CMakeFiles/ht_os.dir/allocator.cc.o"
  "CMakeFiles/ht_os.dir/allocator.cc.o.d"
  "CMakeFiles/ht_os.dir/kernel.cc.o"
  "CMakeFiles/ht_os.dir/kernel.cc.o.d"
  "libht_os.a"
  "libht_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
