
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/allocator.cc" "src/os/CMakeFiles/ht_os.dir/allocator.cc.o" "gcc" "src/os/CMakeFiles/ht_os.dir/allocator.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/ht_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/ht_os.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc/CMakeFiles/ht_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ht_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
