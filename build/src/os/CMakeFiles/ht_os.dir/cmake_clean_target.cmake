file(REMOVE_RECURSE
  "libht_os.a"
)
