# Empty compiler generated dependencies file for ht_os.
# This may be replaced when dependencies are built.
