file(REMOVE_RECURSE
  "CMakeFiles/ht_sim.dir/scenario.cc.o"
  "CMakeFiles/ht_sim.dir/scenario.cc.o.d"
  "CMakeFiles/ht_sim.dir/system.cc.o"
  "CMakeFiles/ht_sim.dir/system.cc.o.d"
  "CMakeFiles/ht_sim.dir/trace.cc.o"
  "CMakeFiles/ht_sim.dir/trace.cc.o.d"
  "CMakeFiles/ht_sim.dir/workloads.cc.o"
  "CMakeFiles/ht_sim.dir/workloads.cc.o.d"
  "libht_sim.a"
  "libht_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
