# Empty compiler generated dependencies file for ht_cpu.
# This may be replaced when dependencies are built.
