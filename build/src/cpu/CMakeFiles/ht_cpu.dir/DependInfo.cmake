
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache.cc" "src/cpu/CMakeFiles/ht_cpu.dir/cache.cc.o" "gcc" "src/cpu/CMakeFiles/ht_cpu.dir/cache.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/ht_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/ht_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/dma.cc" "src/cpu/CMakeFiles/ht_cpu.dir/dma.cc.o" "gcc" "src/cpu/CMakeFiles/ht_cpu.dir/dma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc/CMakeFiles/ht_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ht_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
