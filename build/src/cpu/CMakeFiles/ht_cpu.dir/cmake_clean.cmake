file(REMOVE_RECURSE
  "CMakeFiles/ht_cpu.dir/cache.cc.o"
  "CMakeFiles/ht_cpu.dir/cache.cc.o.d"
  "CMakeFiles/ht_cpu.dir/core.cc.o"
  "CMakeFiles/ht_cpu.dir/core.cc.o.d"
  "CMakeFiles/ht_cpu.dir/dma.cc.o"
  "CMakeFiles/ht_cpu.dir/dma.cc.o.d"
  "libht_cpu.a"
  "libht_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
