file(REMOVE_RECURSE
  "libht_cpu.a"
)
