# Empty compiler generated dependencies file for ht_attack.
# This may be replaced when dependencies are built.
