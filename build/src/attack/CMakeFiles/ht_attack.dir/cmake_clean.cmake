file(REMOVE_RECURSE
  "CMakeFiles/ht_attack.dir/hammer.cc.o"
  "CMakeFiles/ht_attack.dir/hammer.cc.o.d"
  "CMakeFiles/ht_attack.dir/inference.cc.o"
  "CMakeFiles/ht_attack.dir/inference.cc.o.d"
  "CMakeFiles/ht_attack.dir/planner.cc.o"
  "CMakeFiles/ht_attack.dir/planner.cc.o.d"
  "libht_attack.a"
  "libht_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
