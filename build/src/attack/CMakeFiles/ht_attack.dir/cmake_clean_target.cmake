file(REMOVE_RECURSE
  "libht_attack.a"
)
