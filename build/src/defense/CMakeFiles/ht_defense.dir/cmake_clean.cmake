file(REMOVE_RECURSE
  "CMakeFiles/ht_defense.dir/anvil_defense.cc.o"
  "CMakeFiles/ht_defense.dir/anvil_defense.cc.o.d"
  "CMakeFiles/ht_defense.dir/frequency_defense.cc.o"
  "CMakeFiles/ht_defense.dir/frequency_defense.cc.o.d"
  "CMakeFiles/ht_defense.dir/quarantine.cc.o"
  "CMakeFiles/ht_defense.dir/quarantine.cc.o.d"
  "CMakeFiles/ht_defense.dir/refresh_defense.cc.o"
  "CMakeFiles/ht_defense.dir/refresh_defense.cc.o.d"
  "CMakeFiles/ht_defense.dir/scrub_defense.cc.o"
  "CMakeFiles/ht_defense.dir/scrub_defense.cc.o.d"
  "CMakeFiles/ht_defense.dir/watchset_defense.cc.o"
  "CMakeFiles/ht_defense.dir/watchset_defense.cc.o.d"
  "libht_defense.a"
  "libht_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
