
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/anvil_defense.cc" "src/defense/CMakeFiles/ht_defense.dir/anvil_defense.cc.o" "gcc" "src/defense/CMakeFiles/ht_defense.dir/anvil_defense.cc.o.d"
  "/root/repo/src/defense/frequency_defense.cc" "src/defense/CMakeFiles/ht_defense.dir/frequency_defense.cc.o" "gcc" "src/defense/CMakeFiles/ht_defense.dir/frequency_defense.cc.o.d"
  "/root/repo/src/defense/quarantine.cc" "src/defense/CMakeFiles/ht_defense.dir/quarantine.cc.o" "gcc" "src/defense/CMakeFiles/ht_defense.dir/quarantine.cc.o.d"
  "/root/repo/src/defense/refresh_defense.cc" "src/defense/CMakeFiles/ht_defense.dir/refresh_defense.cc.o" "gcc" "src/defense/CMakeFiles/ht_defense.dir/refresh_defense.cc.o.d"
  "/root/repo/src/defense/scrub_defense.cc" "src/defense/CMakeFiles/ht_defense.dir/scrub_defense.cc.o" "gcc" "src/defense/CMakeFiles/ht_defense.dir/scrub_defense.cc.o.d"
  "/root/repo/src/defense/watchset_defense.cc" "src/defense/CMakeFiles/ht_defense.dir/watchset_defense.cc.o" "gcc" "src/defense/CMakeFiles/ht_defense.dir/watchset_defense.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/ht_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ht_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ht_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ht_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
