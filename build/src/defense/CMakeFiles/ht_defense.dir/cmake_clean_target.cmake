file(REMOVE_RECURSE
  "libht_defense.a"
)
