# Empty dependencies file for ht_defense.
# This may be replaced when dependencies are built.
