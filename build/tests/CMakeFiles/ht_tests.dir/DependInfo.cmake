
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_act_counter.cc" "tests/CMakeFiles/ht_tests.dir/test_act_counter.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_act_counter.cc.o.d"
  "/root/repo/tests/test_addrmap.cc" "tests/CMakeFiles/ht_tests.dir/test_addrmap.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_addrmap.cc.o.d"
  "/root/repo/tests/test_allocator.cc" "tests/CMakeFiles/ht_tests.dir/test_allocator.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_allocator.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/ht_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_closed_page.cc" "tests/CMakeFiles/ht_tests.dir/test_closed_page.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_closed_page.cc.o.d"
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/ht_tests.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_controller.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/ht_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_data_store.cc" "tests/CMakeFiles/ht_tests.dir/test_data_store.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_data_store.cc.o.d"
  "/root/repo/tests/test_defenses.cc" "tests/CMakeFiles/ht_tests.dir/test_defenses.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_defenses.cc.o.d"
  "/root/repo/tests/test_device.cc" "tests/CMakeFiles/ht_tests.dir/test_device.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_device.cc.o.d"
  "/root/repo/tests/test_disturbance.cc" "tests/CMakeFiles/ht_tests.dir/test_disturbance.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_disturbance.cc.o.d"
  "/root/repo/tests/test_dma.cc" "tests/CMakeFiles/ht_tests.dir/test_dma.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_dma.cc.o.d"
  "/root/repo/tests/test_ecc.cc" "tests/CMakeFiles/ht_tests.dir/test_ecc.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_ecc.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/ht_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/ht_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_halfdouble.cc" "tests/CMakeFiles/ht_tests.dir/test_halfdouble.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_halfdouble.cc.o.d"
  "/root/repo/tests/test_hammer.cc" "tests/CMakeFiles/ht_tests.dir/test_hammer.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_hammer.cc.o.d"
  "/root/repo/tests/test_inference.cc" "tests/CMakeFiles/ht_tests.dir/test_inference.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_inference.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/ht_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/ht_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_mitigations.cc" "tests/CMakeFiles/ht_tests.dir/test_mitigations.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_mitigations.cc.o.d"
  "/root/repo/tests/test_multichannel.cc" "tests/CMakeFiles/ht_tests.dir/test_multichannel.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_multichannel.cc.o.d"
  "/root/repo/tests/test_onelocation.cc" "tests/CMakeFiles/ht_tests.dir/test_onelocation.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_onelocation.cc.o.d"
  "/root/repo/tests/test_planner.cc" "tests/CMakeFiles/ht_tests.dir/test_planner.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_planner.cc.o.d"
  "/root/repo/tests/test_quarantine.cc" "tests/CMakeFiles/ht_tests.dir/test_quarantine.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_quarantine.cc.o.d"
  "/root/repo/tests/test_refsb.cc" "tests/CMakeFiles/ht_tests.dir/test_refsb.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_refsb.cc.o.d"
  "/root/repo/tests/test_remap.cc" "tests/CMakeFiles/ht_tests.dir/test_remap.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_remap.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/ht_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_scrub.cc" "tests/CMakeFiles/ht_tests.dir/test_scrub.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_scrub.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/ht_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/ht_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/ht_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/ht_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/ht_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trr.cc" "tests/CMakeFiles/ht_tests.dir/test_trr.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_trr.cc.o.d"
  "/root/repo/tests/test_watchset.cc" "tests/CMakeFiles/ht_tests.dir/test_watchset.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_watchset.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ht_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ht_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/ht_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ht_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ht_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ht_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ht_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ht_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
