file(REMOVE_RECURSE
  "CMakeFiles/hammertime.dir/hammertime_cli.cc.o"
  "CMakeFiles/hammertime.dir/hammertime_cli.cc.o.d"
  "hammertime"
  "hammertime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammertime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
