# Empty dependencies file for hammertime.
# This may be replaced when dependencies are built.
