file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_enclave.dir/bench_e11_enclave.cc.o"
  "CMakeFiles/bench_e11_enclave.dir/bench_e11_enclave.cc.o.d"
  "bench_e11_enclave"
  "bench_e11_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
