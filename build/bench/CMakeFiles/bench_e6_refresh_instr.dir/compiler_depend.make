# Empty compiler generated dependencies file for bench_e6_refresh_instr.
# This may be replaced when dependencies are built.
