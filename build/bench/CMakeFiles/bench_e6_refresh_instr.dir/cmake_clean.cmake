file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_refresh_instr.dir/bench_e6_refresh_instr.cc.o"
  "CMakeFiles/bench_e6_refresh_instr.dir/bench_e6_refresh_instr.cc.o.d"
  "bench_e6_refresh_instr"
  "bench_e6_refresh_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_refresh_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
