file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_interleaving.dir/bench_e2_interleaving.cc.o"
  "CMakeFiles/bench_e2_interleaving.dir/bench_e2_interleaving.cc.o.d"
  "bench_e2_interleaving"
  "bench_e2_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
