# Empty dependencies file for bench_e2_interleaving.
# This may be replaced when dependencies are built.
