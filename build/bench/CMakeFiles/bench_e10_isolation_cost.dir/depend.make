# Empty dependencies file for bench_e10_isolation_cost.
# This may be replaced when dependencies are built.
