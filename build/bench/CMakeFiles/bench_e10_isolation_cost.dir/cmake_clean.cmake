file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_isolation_cost.dir/bench_e10_isolation_cost.cc.o"
  "CMakeFiles/bench_e10_isolation_cost.dir/bench_e10_isolation_cost.cc.o.d"
  "bench_e10_isolation_cost"
  "bench_e10_isolation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_isolation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
