file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_locking.dir/bench_e9_locking.cc.o"
  "CMakeFiles/bench_e9_locking.dir/bench_e9_locking.cc.o.d"
  "bench_e9_locking"
  "bench_e9_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
