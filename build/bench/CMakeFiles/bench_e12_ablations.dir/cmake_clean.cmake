file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_ablations.dir/bench_e12_ablations.cc.o"
  "CMakeFiles/bench_e12_ablations.dir/bench_e12_ablations.cc.o.d"
  "bench_e12_ablations"
  "bench_e12_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
