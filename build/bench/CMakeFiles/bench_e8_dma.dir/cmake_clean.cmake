file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_dma.dir/bench_e8_dma.cc.o"
  "CMakeFiles/bench_e8_dma.dir/bench_e8_dma.cc.o.d"
  "bench_e8_dma"
  "bench_e8_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
