file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_density_scaling.dir/bench_e4_density_scaling.cc.o"
  "CMakeFiles/bench_e4_density_scaling.dir/bench_e4_density_scaling.cc.o.d"
  "bench_e4_density_scaling"
  "bench_e4_density_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_density_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
