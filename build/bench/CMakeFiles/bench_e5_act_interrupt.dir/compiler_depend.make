# Empty compiler generated dependencies file for bench_e5_act_interrupt.
# This may be replaced when dependencies are built.
