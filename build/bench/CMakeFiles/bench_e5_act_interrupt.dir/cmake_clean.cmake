file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_act_interrupt.dir/bench_e5_act_interrupt.cc.o"
  "CMakeFiles/bench_e5_act_interrupt.dir/bench_e5_act_interrupt.cc.o.d"
  "bench_e5_act_interrupt"
  "bench_e5_act_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_act_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
