file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_trr_bypass.dir/bench_e3_trr_bypass.cc.o"
  "CMakeFiles/bench_e3_trr_bypass.dir/bench_e3_trr_bypass.cc.o.d"
  "bench_e3_trr_bypass"
  "bench_e3_trr_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_trr_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
