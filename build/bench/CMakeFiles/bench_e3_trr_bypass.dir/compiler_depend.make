# Empty compiler generated dependencies file for bench_e3_trr_bypass.
# This may be replaced when dependencies are built.
